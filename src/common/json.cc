#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace vbr {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse(std::string* error) {
    std::optional<JsonValue> value = ParseValue();
    if (value.has_value()) {
      SkipWhitespace();
      if (pos_ != text_.size()) {
        value.reset();
        error_ = "trailing characters after JSON value";
      }
    }
    if (!value.has_value() && error != nullptr) {
      *error = error_ + " (at byte " + std::to_string(pos_) + ")";
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> Fail(std::string message) {
    error_ = std::move(message);
    return std::nullopt;
  }

  std::optional<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    // Containers recurse; without a cap a few kilobytes of '[' overflow the
    // stack (found by the fuzz harness in tests/fuzz). The writers in this
    // codebase nest a handful of levels, so the cap is generous.
    if (c == '{' || c == '[') {
      if (depth_ >= kMaxDepth) return Fail("nesting depth limit exceeded");
      ++depth_;
      std::optional<JsonValue> value = c == '{' ? ParseObject() : ParseArray();
      --depth_;
      return value;
    }
    if (c == '"') {
      std::optional<std::string> s = ParseString();
      if (!s.has_value()) return std::nullopt;
      return JsonValue::String(std::move(*s));
    }
    if (ConsumeLiteral("true")) return JsonValue::Bool(true);
    if (ConsumeLiteral("false")) return JsonValue::Bool(false);
    if (ConsumeLiteral("null")) return JsonValue::Null();
    return ParseNumber();
  }

  std::optional<JsonValue> ParseObject() {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      std::optional<std::string> key = ParseString();
      if (!key.has_value()) return std::nullopt;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      std::optional<JsonValue> value = ParseValue();
      if (!value.has_value()) return std::nullopt;
      members.emplace(std::move(*key), std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::Object(std::move(members));
      return Fail("expected ',' or '}' in object");
    }
  }

  std::optional<JsonValue> ParseArray() {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    while (true) {
      std::optional<JsonValue> value = ParseValue();
      if (!value.has_value()) return std::nullopt;
      items.push_back(std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::Array(std::move(items));
      return Fail("expected ',' or ']' in array");
    }
  }

  std::optional<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("invalid \\u escape digit");
              return std::nullopt;
            }
          }
          // UTF-8 encode (no surrogate-pair recombination; the writers in
          // this codebase only emit \u00xx control escapes).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          Fail("invalid escape character");
          return std::nullopt;
      }
    }
    Fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Fail("invalid JSON value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("invalid number");
    return JsonValue::Number(value);
  }

  static constexpr size_t kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  size_t depth_ = 0;
  std::string error_ = "parse error";
};

}  // namespace

std::optional<JsonValue> ParseJson(std::string_view text, std::string* error) {
  return Parser(text).Parse(error);
}

}  // namespace vbr
