#ifndef VBR_COMMON_RNG_H_
#define VBR_COMMON_RNG_H_

#include <cstdint>

#include "common/check.h"

namespace vbr {

// Deterministic 64-bit pseudo-random generator (splitmix64). All workload
// generation and property tests derive their randomness from this type so
// experiments are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    VBR_DCHECK(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Forks an independent stream; deterministic in (this stream, salt).
  Rng Fork(uint64_t salt) { return Rng(Next() ^ (salt * 0xd1342543de82ef95ULL)); }

 private:
  uint64_t state_;
};

}  // namespace vbr

#endif  // VBR_COMMON_RNG_H_
