#ifndef VBR_COMMON_JSON_H_
#define VBR_COMMON_JSON_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vbr {

// Minimal JSON support for the observability surfaces: an escaper for the
// writers (EXPLAIN, metrics export, trace dump — each builds its output
// string directly) and a small strict parser used by tests to prove those
// outputs round-trip. Not a general-purpose JSON library: numbers are held
// as doubles, object member order is not preserved (std::map), and inputs
// must be valid UTF-8 passed through verbatim.

// Escapes `s` for embedding inside a JSON string literal (quotes, backslash,
// control characters).
std::string JsonEscape(std::string_view s);

// A parsed JSON value.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::map<std::string, JsonValue>& object_members() const {
    return object_;
  }

  // Object member by key, or nullptr.
  const JsonValue* Get(const std::string& key) const;

  static JsonValue Null();
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses `text` as a single JSON value (trailing whitespace allowed,
// trailing garbage rejected). On failure returns nullopt and, if `error` is
// non-null, stores a message with the byte offset.
std::optional<JsonValue> ParseJson(std::string_view text,
                                   std::string* error = nullptr);

}  // namespace vbr

#endif  // VBR_COMMON_JSON_H_
