#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>
#include <unordered_map>

#include "common/json.h"

namespace vbr {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t CurrentThreadId() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

TraceSink::TraceSink() : epoch_ns_(SteadyNowNs()) {}

uint64_t TraceSink::NowNs() const { return SteadyNowNs() - epoch_ns_; }

TraceSpan::TraceSpan(TraceSink* sink, uint64_t parent_id,
                     std::string_view name)
    : sink_(sink) {
  if (sink_ == nullptr) return;
  id_ = sink_->NextSpanId();
  event_.id = id_;
  event_.parent_id = parent_id;
  event_.name.assign(name.data(), name.size());
  event_.thread_id = CurrentThreadId();
  event_.start_ns = sink_->NowNs();
}

TraceSpan::TraceSpan(TraceSink* sink, std::string_view name)
    : TraceSpan(sink, 0, name) {}

TraceSpan::TraceSpan(const TraceSpan& parent, std::string_view name)
    : TraceSpan(parent.sink_, parent.id_, name) {}

TraceSpan::TraceSpan(const TraceContext& context, std::string_view name)
    : TraceSpan(context.sink, context.parent_id, name) {}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::End() {
  if (sink_ == nullptr) return;
  event_.end_ns = sink_->NowNs();
  sink_->OnSpanEnd(std::move(event_));
  sink_ = nullptr;
}

void TraceSpan::AddAttribute(std::string_view key, std::string_view value) {
  if (sink_ == nullptr) return;
  event_.attributes.emplace_back(std::string(key), std::string(value));
}

void TraceSpan::AddAttribute(std::string_view key, const char* value) {
  AddAttribute(key, std::string_view(value));
}

void TraceSpan::AddAttribute(std::string_view key, uint64_t value) {
  if (sink_ == nullptr) return;
  event_.attributes.emplace_back(std::string(key), std::to_string(value));
}

void TraceSpan::AddAttribute(std::string_view key, double value) {
  if (sink_ == nullptr) return;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  event_.attributes.emplace_back(std::string(key), buffer);
}

void TraceSpan::AddAttribute(std::string_view key, bool value) {
  AddAttribute(key, value ? std::string_view("true") : std::string_view("false"));
}

void MemoryTraceSink::OnSpanEnd(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> MemoryTraceSink::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t MemoryTraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void MemoryTraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string MemoryTraceSink::ToText() const {
  const std::vector<TraceEvent> events = spans();

  // Children of each span, ordered by start time for a stable rendering.
  std::unordered_map<uint64_t, std::vector<size_t>> children;
  std::unordered_map<uint64_t, bool> known;
  for (const TraceEvent& e : events) known[e.id] = true;
  std::vector<size_t> roots;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].parent_id != 0 && known.count(events[i].parent_id) > 0) {
      children[events[i].parent_id].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  const auto by_start = [&](size_t a, size_t b) {
    if (events[a].start_ns != events[b].start_ns) {
      return events[a].start_ns < events[b].start_ns;
    }
    return events[a].id < events[b].id;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (auto& [id, kids] : children) std::sort(kids.begin(), kids.end(), by_start);

  std::string out;
  const std::function<void(size_t, size_t)> render = [&](size_t i,
                                                         size_t depth) {
    const TraceEvent& e = events[i];
    out.append(2 * depth, ' ');
    out += e.name;
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "  %.3fms",
                  static_cast<double>(e.end_ns - e.start_ns) / 1e6);
    out += buffer;
    if (!e.attributes.empty()) {
      out += "  [";
      for (size_t k = 0; k < e.attributes.size(); ++k) {
        if (k > 0) out += ' ';
        out += e.attributes[k].first;
        out += '=';
        out += e.attributes[k].second;
      }
      out += ']';
    }
    out += '\n';
    for (size_t child : children[e.id]) render(child, depth + 1);
  };
  for (size_t root : roots) render(root, 0);
  return out;
}

std::string MemoryTraceSink::ToJson() const {
  const std::vector<TraceEvent> events = spans();
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ',';
    out += "{\"id\":" + std::to_string(e.id);
    out += ",\"parent\":" + std::to_string(e.parent_id);
    out += ",\"name\":\"" + JsonEscape(e.name) + "\"";
    out += ",\"start_ns\":" + std::to_string(e.start_ns);
    out += ",\"end_ns\":" + std::to_string(e.end_ns);
    out += ",\"thread\":" + std::to_string(e.thread_id);
    out += ",\"attributes\":{";
    for (size_t k = 0; k < e.attributes.size(); ++k) {
      if (k > 0) out += ',';
      out += "\"" + JsonEscape(e.attributes[k].first) + "\":\"" +
             JsonEscape(e.attributes[k].second) + "\"";
    }
    out += "}}";
  }
  out += "]";
  return out;
}

}  // namespace vbr
