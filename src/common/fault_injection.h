#ifndef VBR_COMMON_FAULT_INJECTION_H_
#define VBR_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vbr {

// Deterministic fault injection for tests.
//
// The resource-governance layer (common/budget.h) names every cooperative
// check site ("corecover.view_tuples", "cq.containment", ...). When the
// library is compiled with VBR_FAULT_INJECTION (the default dev/test
// configuration; release builds turn it off), each crossing of a site
// consults the process-wide FaultRegistry, and a test can arm a fault to
// fire at exactly the Nth crossing of a site:
//
//   FaultRegistry::Global().Arm("corecover.tuple_cores",
//                               FaultKind::kBudgetExhausted, 3);
//
// Fired faults surface as budget exhaustion on the governor active at the
// crossing (kBudgetExhausted -> work, kAllocFailure -> memory,
// kStageAbort -> injected), which makes every degradation path reachable
// deterministically — no timing, no huge inputs. Without an active governor
// a fired fault is a no-op (the crossing count still advances).
//
// Without VBR_FAULT_INJECTION, FaultCheck() is an inline constant and the
// whole mechanism compiles to nothing at the check sites.
//
// Crossing counts are global; multi-threaded runs cross sites in a
// nondeterministic interleaving, so tests that target "the Nth crossing"
// should run the governed pipeline with num_threads = 1.

enum class FaultKind {
  kBudgetExhausted = 0,  // simulate the work budget running out
  kAllocFailure,         // simulate an allocation beyond the memory budget
  kStageAbort,           // force the enclosing stage to abort
};

const char* FaultKindName(FaultKind kind);

class FaultRegistry {
 public:
  static FaultRegistry& Global();

  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  // Fires `kind` at the `nth` (1-based) crossing of `site` after this call.
  // Re-arming a site replaces its previous fault. Arming activates crossing
  // bookkeeping (see Crossed()).
  void Arm(std::string_view site, FaultKind kind, uint64_t nth);
  void Disarm(std::string_view site);

  // Records sites as they are crossed even with nothing armed, so a test
  // can discover the site inventory of a workload (run once with recording,
  // then Arm each recorded site).
  void EnableRecording(bool enabled);

  // Disarms everything, clears crossing counts and recorded sites, and
  // turns recording off.
  void Reset();

  // Called by the governor at each check-site crossing. Fast path: when
  // nothing is armed and recording is off, a single relaxed atomic load.
  // Returns the fault to fire when this crossing is the armed Nth one.
  std::optional<FaultKind> Crossed(std::string_view site);

  // Sites crossed since the last Reset() (recording or armed), sorted.
  std::vector<std::string> SeenSites() const;
  uint64_t CrossingCount(std::string_view site) const;

 private:
  struct SiteState {
    uint64_t crossings = 0;
    bool armed = false;
    FaultKind kind = FaultKind::kBudgetExhausted;
    uint64_t fire_at = 0;  // crossing number that fires, 0 = never
  };

  std::atomic<bool> active_{false};
  mutable std::mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_;
  bool recording_ = false;
  size_t armed_count_ = 0;
};

#if defined(VBR_FAULT_INJECTION)
inline std::optional<FaultKind> FaultCheck(std::string_view site) {
  return FaultRegistry::Global().Crossed(site);
}
#else
inline std::optional<FaultKind> FaultCheck(std::string_view) {
  return std::nullopt;
}
#endif

}  // namespace vbr

#endif  // VBR_COMMON_FAULT_INJECTION_H_
