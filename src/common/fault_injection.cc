#include "common/fault_injection.h"

namespace vbr {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBudgetExhausted:
      return "budget_exhausted";
    case FaultKind::kAllocFailure:
      return "alloc_failure";
    case FaultKind::kStageAbort:
      return "stage_abort";
  }
  return "?";
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* const registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(std::string_view site, FaultKind kind, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[std::string(site)];
  if (!state.armed) ++armed_count_;
  state.armed = true;
  state.kind = kind;
  state.fire_at = nth == 0 ? 0 : state.crossings + nth;
  active_.store(true, std::memory_order_release);
}

void FaultRegistry::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  it->second.fire_at = 0;
  --armed_count_;
  if (armed_count_ == 0 && !recording_) {
    active_.store(false, std::memory_order_release);
  }
}

void FaultRegistry::EnableRecording(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  recording_ = enabled;
  active_.store(recording_ || armed_count_ > 0, std::memory_order_release);
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  recording_ = false;
  armed_count_ = 0;
  active_.store(false, std::memory_order_release);
}

std::optional<FaultKind> FaultRegistry::Crossed(std::string_view site) {
  // Fast path: nothing armed, not recording — a single relaxed load. The
  // governor calls this from hot loops, so the inert cost matters.
  if (!active_.load(std::memory_order_acquire)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[std::string(site)];
  ++state.crossings;
  if (state.armed && state.fire_at != 0 && state.crossings == state.fire_at) {
    return state.kind;
  }
  return std::nullopt;
}

std::vector<std::string> FaultRegistry::SeenSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [site, state] : sites_) {
    if (state.crossings > 0) out.push_back(site);
  }
  return out;
}

uint64_t FaultRegistry::CrossingCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.crossings;
}

}  // namespace vbr
