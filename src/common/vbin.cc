#include "common/vbin.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <utility>

namespace vbr::vbin {
namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view bytes, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char ch : bytes) {
    c = kTable[(c ^ ch) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void AppendVarint(std::string& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

void AppendF64(std::string& out, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

void AppendU8(std::string& out, uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void AppendU32(std::string& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void AppendBytes(std::string& out, std::string_view bytes) {
  AppendVarint(out, bytes.size());
  out.append(bytes);
}

// ---------------------------------------------------------------------------
// Reader

bool Reader::ReadVarint(uint64_t* value) {
  if (!error_.empty()) return false;
  uint64_t result = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (pos_ >= bytes_.size()) {
      Fail("varint truncated");
      return false;
    }
    uint8_t byte = static_cast<uint8_t>(bytes_[pos_++]);
    // The 10th byte may only contribute the final bit of a 64-bit value.
    if (shift == 63 && (byte & 0x7E) != 0) {
      Fail("varint overflow");
      return false;
    }
    if (shift > 63) {
      Fail("varint overflow");
      return false;
    }
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  Fail("varint too long");
  return false;
}

bool Reader::ReadF64(double* value) {
  if (!error_.empty()) return false;
  if (bytes_.size() - pos_ < 8) {
    Fail("f64 truncated");
    return false;
  }
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
            << (8 * i);
  }
  pos_ += 8;
  std::memcpy(value, &bits, sizeof(*value));
  return true;
}

bool Reader::ReadU8(uint8_t* value) {
  if (!error_.empty()) return false;
  if (pos_ >= bytes_.size()) {
    Fail("u8 truncated");
    return false;
  }
  *value = static_cast<uint8_t>(bytes_[pos_++]);
  return true;
}

bool Reader::ReadU32(uint32_t* value) {
  if (!error_.empty()) return false;
  if (bytes_.size() - pos_ < 4) {
    Fail("u32 truncated");
    return false;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *value = v;
  return true;
}

bool Reader::ReadBytes(std::string_view* bytes) {
  uint64_t length = 0;
  if (!ReadVarint(&length)) return false;
  if (length > bytes_.size() - pos_) {
    Fail("byte string truncated");
    return false;
  }
  *bytes = bytes_.substr(pos_, length);
  pos_ += length;
  return true;
}

bool Reader::ReadBool(bool* value) {
  uint8_t byte = 0;
  if (!ReadU8(&byte)) return false;
  if (byte > 1) {
    Fail("bool out of range");
    return false;
  }
  *value = byte != 0;
  return true;
}

void Reader::Fail(std::string message) {
  if (error_.empty()) error_ = std::move(message);
}

Status Reader::ToStatus(std::string_view context) const {
  if (ok()) return Status::Ok();
  return Status::Error(std::string(context) + ": " + error_);
}

// ---------------------------------------------------------------------------
// FileWriter

uint64_t FileWriter::Intern(std::string_view s) {
  for (const auto& [name, id] : index_) {
    if (name == s) return id;
  }
  uint64_t id = pool_.size();
  pool_.emplace_back(s);
  index_.emplace_back(std::string(s), id);
  return id;
}

std::string FileWriter::Finish() && {
  std::string pool_bytes;
  vbin::AppendVarint(pool_bytes, pool_.size());
  for (const std::string& s : pool_) {
    vbin::AppendBytes(pool_bytes, s);
  }

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  vbin::AppendU8(out, kContainerVersion);
  vbin::AppendU8(out, static_cast<uint8_t>(kind_));
  // Reserved flags, must be zero in version 1.
  out.push_back(0);
  out.push_back(0);

  vbin::AppendVarint(out, 2);  // section count
  vbin::AppendVarint(out, kSectionStringPool);
  vbin::AppendVarint(out, pool_bytes.size());
  vbin::AppendVarint(out, kSectionBody);
  vbin::AppendVarint(out, body_.size());
  out.append(pool_bytes);
  out.append(body_);

  vbin::AppendU32(out, Crc32(out));
  return out;
}

// ---------------------------------------------------------------------------
// FileView / OpenFile

bool FileView::String(uint64_t index, std::string_view* out,
                      Reader* reader) const {
  if (index >= strings.size()) {
    reader->Fail("string pool index out of range");
    return false;
  }
  *out = strings[index];
  return true;
}

namespace {

Status ParseStringPool(std::string_view section, FileView* out) {
  Reader reader(section);
  uint64_t count = 0;
  if (!reader.ReadVarint(&count)) {
    return reader.ToStatus("string pool");
  }
  // Each pooled string costs at least one length byte, so a count beyond
  // the remaining bytes is a lie — reject it before reserving anything.
  if (count > reader.remaining()) {
    return Status::Error("string pool: count exceeds section size");
  }
  out->strings.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view s;
    if (!reader.ReadBytes(&s)) {
      return reader.ToStatus("string pool");
    }
    out->strings.push_back(s);
  }
  if (!reader.AtEnd()) {
    return Status::Error("string pool: trailing bytes");
  }
  return Status::Ok();
}

}  // namespace

Status OpenFile(std::string_view bytes, FileView* out,
                FileKind expected_kind) {
  *out = FileView{};
  if (bytes.size() < sizeof(kMagic) + 4 + 4) {
    return Status::Error("file too small");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Error("bad magic");
  }

  // CRC covers everything before the 4-byte trailer.
  std::string_view covered = bytes.substr(0, bytes.size() - 4);
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(
                  static_cast<uint8_t>(bytes[bytes.size() - 4 + i]))
              << (8 * i);
  }
  if (Crc32(covered) != stored) {
    return Status::Error("crc mismatch");
  }

  Reader reader(covered.substr(sizeof(kMagic)));
  uint8_t version = 0, kind_byte = 0, reserved0 = 0, reserved1 = 0;
  reader.ReadU8(&version);
  reader.ReadU8(&kind_byte);
  reader.ReadU8(&reserved0);
  reader.ReadU8(&reserved1);
  if (!reader.ok()) return reader.ToStatus("header");
  if (version == 0 || version > kContainerVersion) {
    return Status::Error("unsupported container version " +
                         std::to_string(version));
  }
  if (reserved0 != 0 || reserved1 != 0) {
    return Status::Error("reserved header bytes nonzero");
  }
  out->container_version = version;
  out->kind = static_cast<FileKind>(kind_byte);
  if (expected_kind != static_cast<FileKind>(0) &&
      out->kind != expected_kind) {
    return Status::Error("unexpected file kind " + std::to_string(kind_byte));
  }

  uint64_t section_count = 0;
  if (!reader.ReadVarint(&section_count)) {
    return reader.ToStatus("section table");
  }
  // Each table entry needs >= 2 bytes; a huge count cannot be honest.
  if (section_count > reader.remaining() / 2 + 1) {
    return Status::Error("section table: count exceeds file size");
  }
  struct SectionEntry {
    uint64_t tag;
    uint64_t length;
  };
  std::vector<SectionEntry> sections;
  sections.reserve(section_count);
  uint64_t total_payload = 0;
  for (uint64_t i = 0; i < section_count; ++i) {
    SectionEntry entry{};
    if (!reader.ReadVarint(&entry.tag) || !reader.ReadVarint(&entry.length)) {
      return reader.ToStatus("section table");
    }
    if (entry.length > reader.remaining() - total_payload ||
        total_payload + entry.length < total_payload) {
      return Status::Error("section table: lengths exceed file size");
    }
    total_payload += entry.length;
    sections.push_back(entry);
  }
  if (total_payload != reader.remaining()) {
    return Status::Error("section table: lengths do not cover payload");
  }

  // Section payloads follow the table in table order; slice them out of
  // `covered` directly (their lengths came from the table, not inline).
  bool saw_pool = false, saw_body = false;
  size_t consumed = covered.size() - sizeof(kMagic) - reader.remaining();
  size_t cursor = sizeof(kMagic) + consumed;
  for (const SectionEntry& entry : sections) {
    std::string_view payload = covered.substr(cursor, entry.length);
    cursor += entry.length;
    if (entry.tag == kSectionStringPool) {
      if (saw_pool) return Status::Error("duplicate string pool section");
      saw_pool = true;
      Status status = ParseStringPool(payload, out);
      if (!status.ok()) return status;
    } else if (entry.tag == kSectionBody) {
      if (saw_body) return Status::Error("duplicate body section");
      saw_body = true;
      out->body = payload;
    }
    // Unknown tags: skipped (forward compatibility).
  }
  if (!saw_body) {
    return Status::Error("missing body section");
  }
  return Status::Ok();
}

Status OpenFileAnyKind(std::string_view bytes, FileView* out) {
  return OpenFile(bytes, out, static_cast<FileKind>(0));
}

// ---------------------------------------------------------------------------
// File I/O

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Error("cannot open " + path);
  }
  out->clear();
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->append(buffer, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Error("read error on " + path);
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("cannot create " + tmp);
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fflush(f) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Error("write error on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Error("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

}  // namespace vbr::vbin
