#ifndef VBR_COST_SUPPLEMENTARY_H_
#define VBR_COST_SUPPLEMENTARY_H_

#include <vector>

#include "cost/physical_plan.h"
#include "cq/query.h"
#include "engine/database.h"

namespace vbr {

// Attribute dropping under cost model M3 (Section 6).
//
// The classical supplementary-relation (SR) rule drops a variable after step
// i iff it appears neither in the head nor in any later subgoal. The paper's
// generalized (GSR) heuristic additionally drops a variable Y that IS used
// later whenever renaming Y's occurrences in the already-processed prefix to
// a fresh variable leaves the rewriting equivalent to the query — i.e., the
// equality with the later occurrence was never needed (Example 6.1).

// SR drop annotations for `order` over `rewriting`: drop_after[k] holds the
// variables whose last use (outside the head) is subgoal order[k].
std::vector<std::vector<Term>> SupplementaryDrops(
    const ConjunctiveQuery& rewriting, const std::vector<size_t>& order);

struct GeneralizedDropsResult {
  // Per-step drop lists (SR drops plus renaming-safe drops).
  std::vector<std::vector<Term>> drop_after;
  // The renaming-safe drops alone: extra_drops[k] ⊆ drop_after[k] lists the
  // variables the SR rule would have retained.
  std::vector<std::vector<Term>> extra_drops;
  // The rewriting after the accumulated renamings; evaluating it with
  // drop_after computes the original answer.
  ConjunctiveQuery renamed_rewriting;
};

// The paper's GSR heuristic applied greedily along `order`: at each step,
// every variable is dropped if the SR rule allows it, or if renaming it in
// the processed prefix keeps the (renamed) rewriting an equivalent rewriting
// of `query`. Renamings accumulate left to right so later tests see earlier
// decisions.
GeneralizedDropsResult GeneralizedDrops(const ConjunctiveQuery& rewriting,
                                        const ConjunctiveQuery& query,
                                        const ViewSet& views,
                                        const std::vector<size_t>& order);

// Cost-model-M3 comparison of the SR and GSR strategies for one rewriting.
struct M3Comparison {
  PhysicalPlan sr_plan;
  PhysicalPlan gsr_plan;
  size_t sr_cost = 0;
  size_t gsr_cost = 0;
};

// Evaluates both strategies over every subgoal order (n <= 8) and returns
// each strategy's best plan. The GSR plan's rewriting may be the renamed
// variant; both compute the same answer.
M3Comparison CompareM3Strategies(const ConjunctiveQuery& rewriting,
                                 const ConjunctiveQuery& query,
                                 const ViewSet& views,
                                 const Database& view_db);

}  // namespace vbr

#endif  // VBR_COST_SUPPLEMENTARY_H_
