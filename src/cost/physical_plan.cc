#include "cost/physical_plan.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/budget.h"
#include "common/check.h"
#include "engine/value.h"

namespace vbr {

namespace {

// Mutable join state: a relation over a list of variable columns.
struct State {
  std::vector<Term> columns;
  Relation rows{0};
};

// Joins `atom`'s relation into `state`: shared variables are equated,
// constants selected, new variables appended as columns. Sets *aborted and
// stops materializing when the governor's memory budget runs out — a single
// explosive join is exactly what the budget must be able to stop mid-step.
State JoinStep(const State& state, const Atom& atom, const Relation& rel,
               ResourceGovernor* governor, bool* aborted) {
  // Classify atom positions.
  std::unordered_map<Symbol, size_t> state_col;
  for (size_t i = 0; i < state.columns.size(); ++i) {
    state_col.emplace(state.columns[i].symbol(), i);
  }
  struct Position {
    enum Kind { kConstant, kShared, kNew, kRepeatedNew } kind;
    size_t index;     // state column (kShared) or first atom position
                      // (kRepeatedNew)
    Value constant;   // kConstant
  };
  std::vector<Position> positions(atom.arity());
  std::unordered_map<Symbol, size_t> first_pos_of_new;
  State next;
  next.columns = state.columns;
  for (size_t i = 0; i < atom.arity(); ++i) {
    const Term t = atom.arg(i);
    if (t.is_constant()) {
      positions[i] = {Position::kConstant, 0, EncodeConstant(t)};
      continue;
    }
    auto it = state_col.find(t.symbol());
    if (it != state_col.end()) {
      positions[i] = {Position::kShared, it->second, 0};
      continue;
    }
    auto [fit, inserted] = first_pos_of_new.emplace(t.symbol(), i);
    if (inserted) {
      positions[i] = {Position::kNew, 0, 0};
      next.columns.push_back(t);
    } else {
      positions[i] = {Position::kRepeatedNew, fit->second, 0};
    }
  }
  next.rows = Relation(next.columns.size());

  // Index the atom's relation on the bound positions (constants + shared).
  std::vector<size_t> key_cols;
  for (size_t i = 0; i < atom.arity(); ++i) {
    if (positions[i].kind == Position::kConstant ||
        positions[i].kind == Position::kShared) {
      key_cols.push_back(i);
    }
  }
  const RelationIndex index(rel, key_cols);

  std::vector<Value> key(key_cols.size());
  std::vector<Value> out(next.columns.size());
  auto emit_matches = [&](std::span<const Value> state_row) {
    for (size_t k = 0; k < key_cols.size(); ++k) {
      const Position& p = positions[key_cols[k]];
      key[k] = (p.kind == Position::kConstant) ? p.constant
                                               : state_row[p.index];
    }
    for (size_t row_idx : index.Probe(key)) {
      auto rel_row = rel.row(row_idx);
      bool ok = true;
      for (size_t i = 0; i < atom.arity() && ok; ++i) {
        switch (positions[i].kind) {
          case Position::kConstant:
            ok = rel_row[i] == positions[i].constant;
            break;
          case Position::kShared:
            ok = rel_row[i] == state_row[positions[i].index];
            break;
          case Position::kRepeatedNew:
            ok = rel_row[i] == rel_row[positions[i].index];
            break;
          case Position::kNew:
            break;
        }
      }
      if (!ok) continue;
      std::copy(state_row.begin(), state_row.end(), out.begin());
      size_t next_col = state_row.size();
      for (size_t i = 0; i < atom.arity(); ++i) {
        if (positions[i].kind == Position::kNew) out[next_col++] = rel_row[i];
      }
      if (governor != nullptr &&
          (!governor->ChargeMemory(out.size() * sizeof(Value),
                                   "engine.plan_state") ||
           (next.rows.size() % 256 == 0 &&
            !governor->KeepGoing("engine.plan_state")))) {
        *aborted = true;
        return;
      }
      next.rows.Insert(out);
    }
  };

  if (state.columns.empty()) {
    // Nullary state: either the seed tuple (emit once) or annihilated.
    if (state.rows.size() == 1) {
      emit_matches(std::span<const Value>{});
    }
  } else {
    for (size_t r = 0; r < state.rows.size() && !*aborted; ++r) {
      emit_matches(state.rows.row(r));
    }
  }
  return next;
}

// Projects `state` onto the columns not listed in `drops`.
State DropColumns(const State& state, const std::vector<Term>& drops) {
  if (drops.empty()) return state;
  State next;
  std::vector<size_t> keep;
  for (size_t i = 0; i < state.columns.size(); ++i) {
    if (std::find(drops.begin(), drops.end(), state.columns[i]) ==
        drops.end()) {
      keep.push_back(i);
      next.columns.push_back(state.columns[i]);
    }
  }
  next.rows = Relation(keep.size());
  std::vector<Value> out(keep.size());
  for (size_t r = 0; r < state.rows.size(); ++r) {
    auto row = state.rows.row(r);
    for (size_t k = 0; k < keep.size(); ++k) out[k] = row[keep[k]];
    next.rows.Insert(out);
  }
  return next;
}

}  // namespace

std::string PhysicalPlan::ToString() const {
  std::string s = "[";
  for (size_t k = 0; k < order.size(); ++k) {
    if (k > 0) s += ", ";
    s += rewriting.subgoal(order[k]).ToString();
    if (k < drop_after.size() && !drop_after[k].empty()) {
      s += "{drop ";
      for (size_t i = 0; i < drop_after[k].size(); ++i) {
        if (i > 0) s += ",";
        s += drop_after[k][i].ToString();
      }
      s += "}";
    }
  }
  s += "]";
  return s;
}

size_t PlanExecution::TotalCost() const {
  if (aborted) return std::numeric_limits<size_t>::max();
  size_t total = 0;
  for (size_t s : relation_sizes) total += s;
  for (size_t s : state_sizes) total += s;
  return total;
}

PlanExecution ExecutePlan(const PhysicalPlan& plan, const Database& view_db) {
  const ConjunctiveQuery& p = plan.rewriting;
  VBR_CHECK(plan.order.size() == p.num_subgoals());
  VBR_CHECK(plan.drop_after.empty() ||
            plan.drop_after.size() == plan.order.size());
  for (const auto& drops : plan.drop_after) {
    for (Term t : drops) {
      VBR_CHECK_MSG(!p.head().Mentions(t),
                    "physical plans must not drop head variables");
    }
  }

  PlanExecution result;
  ResourceGovernor* const governor = ResourceGovernor::Current();
  State state;
  state.rows = Relation(0);
  state.rows.Insert(std::span<const Value>{});  // The nullary seed tuple.
  for (size_t k = 0; k < plan.order.size(); ++k) {
    const Atom& atom = p.subgoal(plan.order[k]);
    const Relation* rel = view_db.Find(atom.predicate());
    const Relation empty_of_arity(atom.arity());
    if (rel == nullptr) rel = &empty_of_arity;
    VBR_CHECK_MSG(rel->arity() == atom.arity(),
                  "view relation arity mismatches subgoal");
    result.relation_sizes.push_back(rel->size());
    bool aborted = false;
    state = JoinStep(state, atom, *rel, governor, &aborted);
    if (aborted) {
      // Incomplete state: the head projection below would be partial (or
      // CHECK on missing columns), so report an aborted execution instead.
      result.aborted = true;
      return result;
    }
    if (!plan.drop_after.empty()) {
      state = DropColumns(state, plan.drop_after[k]);
    }
    result.state_sizes.push_back(state.rows.size());
  }

  // Project onto the head.
  std::unordered_map<Symbol, size_t> col_of;
  for (size_t i = 0; i < state.columns.size(); ++i) {
    col_of.emplace(state.columns[i].symbol(), i);
  }
  result.answer = Relation(p.head().arity());
  std::vector<Value> out(p.head().arity());
  for (size_t r = 0; r < state.rows.size(); ++r) {
    auto row = state.rows.row(r);
    for (size_t i = 0; i < p.head().arity(); ++i) {
      const Term t = p.head().arg(i);
      if (t.is_constant()) {
        out[i] = EncodeConstant(t);
      } else {
        auto it = col_of.find(t.symbol());
        VBR_CHECK_MSG(it != col_of.end(),
                      "head variable missing from final state");
        out[i] = row[it->second];
      }
    }
    result.answer.Insert(out);
  }
  return result;
}

}  // namespace vbr
