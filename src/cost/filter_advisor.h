#ifndef VBR_COST_FILTER_ADVISOR_H_
#define VBR_COST_FILTER_ADVISOR_H_

#include <vector>

#include "cq/query.h"
#include "engine/database.h"

namespace vbr {

// Section 5's counterintuitive observation: ADDING a view subgoal can make a
// rewriting cheaper under M2 when the extra relation is selective (rewriting
// P3 beating P2 in the car-loc-part example when v3 is small). The advisor
// greedily appends candidate filter atoms (typically the empty-core view
// tuples CoreCover reports) while the M2-optimal cost decreases.

struct FilterAdvice {
  // The input rewriting with the accepted filters appended.
  ConjunctiveQuery improved;
  // The filter atoms that were accepted, in acceptance order.
  std::vector<Atom> filters_added;
  // M2-optimal cost before and after.
  size_t base_cost = 0;
  size_t improved_cost = 0;
};

FilterAdvice AdviseFilters(const ConjunctiveQuery& rewriting,
                           const std::vector<Atom>& candidates,
                           const Database& view_db);

}  // namespace vbr

#endif  // VBR_COST_FILTER_ADVISOR_H_
