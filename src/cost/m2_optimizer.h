#ifndef VBR_COST_M2_OPTIMIZER_H_
#define VBR_COST_M2_OPTIMIZER_H_

#include <cstddef>
#include <vector>

#include "common/trace.h"
#include "cost/physical_plan.h"
#include "cq/query.h"
#include "engine/database.h"

namespace vbr {

// Join-order optimization under cost model M2. Because IR_i retains all
// attributes, its size depends only on the SET of the first i subgoals, so
// an exact optimum falls out of dynamic programming over subsets (the
// System-R idea specialized to M2's cost).
//
// Sizes are measured exactly by evaluating joins against the materialized
// view relations: this plays the role of the optimizer's statistics.

struct M2OptimizationResult {
  PhysicalPlan plan;       // Best order, no drop annotations.
  size_t cost = 0;         // M2 cost of the best order.
  size_t subsets_costed = 0;  // Number of distinct IR sizes measured.
  // True when the thread's ResourceGovernor stopped the DP early; the plan
  // is then the identity order with cost SIZE_MAX (worst possible), so a
  // budget-starved candidate loses every cost comparison but never crashes.
  bool aborted = false;
};

// Exact M2-optimal order for `rewriting` against `view_db`. The rewriting
// must have at most 20 subgoals (2^n subset DP). With an active `trace`,
// emits an "optimize_m2" span recording the chosen cost and the number of
// subsets costed.
M2OptimizationResult OptimizeOrderM2(const ConjunctiveQuery& rewriting,
                                     const Database& view_db,
                                     const TraceContext& trace = {});

// M2 cost of one specific order (sum of view sizes and IR sizes).
size_t CostOfOrderM2(const ConjunctiveQuery& rewriting,
                     const std::vector<size_t>& order,
                     const Database& view_db);

}  // namespace vbr

#endif  // VBR_COST_M2_OPTIMIZER_H_
