#include "cost/estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/check.h"
#include "engine/value.h"

namespace vbr {

StatsCatalog StatsCatalog::Collect(const Database& db) {
  StatsCatalog catalog;
  for (Symbol predicate : db.Predicates()) {
    const Relation& rel = *db.Find(predicate);
    RelationStats stats;
    stats.rows = rel.size();
    stats.distinct.resize(rel.arity(), 0);
    for (size_t col = 0; col < rel.arity(); ++col) {
      std::unordered_set<Value> values;
      for (size_t r = 0; r < rel.size(); ++r) {
        values.insert(rel.row(r)[col]);
      }
      stats.distinct[col] = values.size();
    }
    catalog.stats_.emplace(predicate, std::move(stats));
  }
  return catalog;
}

const RelationStats* StatsCatalog::Find(Symbol predicate) const {
  auto it = stats_.find(predicate);
  return it == stats_.end() ? nullptr : &it->second;
}

double EstimateJoinSize(const std::vector<Atom>& atoms,
                        const StatsCatalog& catalog) {
  if (atoms.empty()) return 1.0;
  double size = 1.0;
  // (atom index, position) occurrences per variable; constants collected
  // with their column's distinct count.
  std::unordered_map<Symbol, std::vector<size_t>> var_distincts;
  std::vector<size_t> constant_distincts;

  for (const Atom& atom : atoms) {
    VBR_CHECK_MSG(!atom.is_builtin(),
                  "the estimator handles relational atoms only");
    const RelationStats* stats = catalog.Find(atom.predicate());
    if (stats == nullptr || stats->rows == 0) return 0.0;
    size *= static_cast<double>(stats->rows);
    for (size_t p = 0; p < atom.arity(); ++p) {
      const size_t distinct = std::max<size_t>(stats->distinct[p], 1);
      const Term t = atom.arg(p);
      if (t.is_constant()) {
        constant_distincts.push_back(distinct);
      } else {
        var_distincts[t.symbol()].push_back(distinct);
      }
    }
  }
  // Each constant selection keeps ~1/distinct of its relation.
  for (size_t d : constant_distincts) {
    size /= static_cast<double>(d);
  }
  // A variable with k occurrences induces k-1 equalities; under the
  // containment-of-values assumption each costs 1/max(distinct of the two
  // sides); the standard simplification divides by every occurrence's
  // distinct count except the smallest.
  for (auto& [var, distincts] : var_distincts) {
    if (distincts.size() < 2) continue;
    std::sort(distincts.begin(), distincts.end());
    for (size_t i = 1; i < distincts.size(); ++i) {
      size /= static_cast<double>(distincts[i]);
    }
  }
  return std::max(size, 1.0);
}

M2OptimizationResult OptimizeOrderM2Estimated(
    const ConjunctiveQuery& rewriting, const StatsCatalog& catalog) {
  const size_t n = rewriting.num_subgoals();
  VBR_CHECK_MSG(n >= 1, "cannot optimize an empty rewriting");
  VBR_CHECK_MSG(n <= 20, "subset DP is limited to 20 subgoals");

  const uint32_t full = (uint32_t{1} << n) - 1;
  // Estimated |IR(S)| per subset.
  std::vector<double> ir(full + 1, 0.0);
  for (uint32_t mask = 1; mask <= full; ++mask) {
    std::vector<Atom> atoms;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint32_t{1} << i)) atoms.push_back(rewriting.subgoal(i));
    }
    ir[mask] = EstimateJoinSize(atoms, catalog);
  }
  std::vector<double> rel_size(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const RelationStats* stats =
        catalog.Find(rewriting.subgoal(i).predicate());
    rel_size[i] = stats == nullptr ? 0.0 : static_cast<double>(stats->rows);
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(full + 1, kInf);
  std::vector<int> last(full + 1, -1);
  best[0] = 0.0;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    for (size_t g = 0; g < n; ++g) {
      const uint32_t bit = uint32_t{1} << g;
      if (!(mask & bit)) continue;
      const double total = best[mask ^ bit] + rel_size[g] + ir[mask];
      if (total < best[mask]) {
        best[mask] = total;
        last[mask] = static_cast<int>(g);
      }
    }
  }

  M2OptimizationResult result;
  result.cost = static_cast<size_t>(std::llround(best[full]));
  result.subsets_costed = full;
  result.plan.rewriting = rewriting;
  std::vector<size_t> reversed;
  for (uint32_t mask = full; mask != 0;) {
    const int g = last[mask];
    VBR_CHECK(g >= 0);
    reversed.push_back(static_cast<size_t>(g));
    mask ^= uint32_t{1} << g;
  }
  result.plan.order.assign(reversed.rbegin(), reversed.rend());
  return result;
}

}  // namespace vbr
