#ifndef VBR_COST_M3_OPTIMIZER_H_
#define VBR_COST_M3_OPTIMIZER_H_

#include <cstddef>

#include "common/trace.h"
#include "cost/physical_plan.h"
#include "cq/query.h"
#include "engine/database.h"

namespace vbr {

// Cost-based optimization under M3 — the "improved optimizer" the paper's
// Section 6.2 sketches. The GSR heuristic identifies which attributes CAN
// be dropped (renaming-safe), but dropping a renaming-safe attribute
// removes an equality and may inflate later intermediates, so the choice
// should be cost-based. This optimizer enumerates join orders and, per
// order, every keep/drop decision over the renaming-safe candidates
// (classical supplementary drops are always taken: removing an unused
// column never grows a set-semantics state), evaluating each plan's true
// M3 cost against the view database.
//
// Exponential in (orders x safe candidates); intended for the paper-scale
// plans (<= 8 subgoals) where it is exact.

struct M3OptimizationResult {
  // The cheapest plan found. Its rewriting may be a renamed variant of the
  // input (renamings make dropped equalities explicit); it computes the
  // same answer.
  PhysicalPlan plan;
  size_t cost = 0;
  // Number of complete physical plans whose cost was measured.
  size_t plans_evaluated = 0;
  // True when the thread's ResourceGovernor stopped the enumeration early.
  // The plan is then the best of the plans evaluated so far (each fully
  // measured, so it is genuine), or cost SIZE_MAX when none completed.
  bool aborted = false;
};

// With an active `trace`, emits an "optimize_m3" span recording the chosen
// cost and the number of complete plans evaluated.
M3OptimizationResult OptimizeM3(const ConjunctiveQuery& rewriting,
                                const ConjunctiveQuery& query,
                                const ViewSet& views,
                                const Database& view_db,
                                const TraceContext& trace = {});

}  // namespace vbr

#endif  // VBR_COST_M3_OPTIMIZER_H_
