#include "cost/m2_optimizer.h"

#include <limits>
#include <numeric>
#include <unordered_map>

#include "common/budget.h"
#include "common/check.h"
#include "engine/evaluator.h"

namespace vbr {

namespace {

// Measures |IR(S)| for a subset mask of subgoals, caching results.
class IrSizeCache {
 public:
  IrSizeCache(const ConjunctiveQuery& rewriting, const Database& view_db)
      : rewriting_(rewriting), view_db_(view_db) {}

  size_t Get(uint32_t mask) {
    auto it = cache_.find(mask);
    if (it != cache_.end()) return it->second;
    std::vector<Atom> atoms;
    for (size_t i = 0; i < rewriting_.num_subgoals(); ++i) {
      if (mask & (uint32_t{1} << i)) atoms.push_back(rewriting_.subgoal(i));
    }
    const size_t size = JoinSize(atoms, view_db_);
    cache_.emplace(mask, size);
    return size;
  }

  size_t entries() const { return cache_.size(); }

 private:
  const ConjunctiveQuery& rewriting_;
  const Database& view_db_;
  std::unordered_map<uint32_t, size_t> cache_;
};

size_t RelationSize(const ConjunctiveQuery& rewriting, size_t subgoal,
                    const Database& view_db) {
  const Relation* rel =
      view_db.Find(rewriting.subgoal(subgoal).predicate());
  return rel == nullptr ? 0 : rel->size();
}

}  // namespace

M2OptimizationResult OptimizeOrderM2(const ConjunctiveQuery& rewriting,
                                     const Database& view_db,
                                     const TraceContext& trace) {
  TraceSpan span(trace, "optimize_m2");
  const size_t n = rewriting.num_subgoals();
  VBR_CHECK_MSG(n >= 1, "cannot optimize an empty rewriting");
  VBR_CHECK_MSG(n <= 20, "subset DP is limited to 20 subgoals");
  IrSizeCache ir(rewriting, view_db);

  const uint32_t full = (n == 32) ? ~uint32_t{0} : (uint32_t{1} << n) - 1;
  constexpr size_t kInf = std::numeric_limits<size_t>::max();
  std::vector<size_t> best(full + 1, kInf);
  std::vector<int> last(full + 1, -1);
  best[0] = 0;
  ResourceGovernor* const governor = ResourceGovernor::Current();
  bool aborted = false;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    // One work unit per subset costed; the DP runs serially on the caller
    // thread, so the checkpoint latches a work budget deterministically.
    if (governor != nullptr) {
      governor->ChargeWork(1);
      if (!governor->CheckPoint("cost.m2")) {
        aborted = true;
        break;
      }
    }
    for (size_t g = 0; g < n; ++g) {
      const uint32_t bit = uint32_t{1} << g;
      if (!(mask & bit)) continue;
      const size_t prev = best[mask ^ bit];
      if (prev == kInf) continue;
      const size_t step_cost =
          RelationSize(rewriting, g, view_db) + ir.Get(mask);
      const size_t total = prev + step_cost;
      if (total < best[mask]) {
        best[mask] = total;
        last[mask] = static_cast<int>(g);
      }
    }
  }

  M2OptimizationResult result;
  result.subsets_costed = ir.entries();
  result.plan.rewriting = rewriting;
  if (aborted) {
    result.aborted = true;
    result.cost = kInf;
    result.plan.order.resize(n);
    std::iota(result.plan.order.begin(), result.plan.order.end(), 0);
    span.AddAttribute("aborted", true);
  } else {
    result.cost = best[full];
    std::vector<size_t> reversed;
    for (uint32_t mask = full; mask != 0;) {
      const int g = last[mask];
      VBR_CHECK(g >= 0);
      reversed.push_back(static_cast<size_t>(g));
      mask ^= uint32_t{1} << g;
    }
    result.plan.order.assign(reversed.rbegin(), reversed.rend());
  }
  span.AddAttribute("subgoals", static_cast<uint64_t>(n));
  span.AddAttribute("cost", static_cast<uint64_t>(result.cost));
  span.AddAttribute("subsets_costed",
                    static_cast<uint64_t>(result.subsets_costed));
  return result;
}

size_t CostOfOrderM2(const ConjunctiveQuery& rewriting,
                     const std::vector<size_t>& order,
                     const Database& view_db) {
  VBR_CHECK(order.size() == rewriting.num_subgoals());
  IrSizeCache ir(rewriting, view_db);
  size_t total = 0;
  uint32_t mask = 0;
  for (size_t g : order) {
    mask |= uint32_t{1} << g;
    total += RelationSize(rewriting, g, view_db) + ir.Get(mask);
  }
  return total;
}

}  // namespace vbr
