#include "cost/filter_advisor.h"

#include "cost/m2_optimizer.h"

namespace vbr {

FilterAdvice AdviseFilters(const ConjunctiveQuery& rewriting,
                           const std::vector<Atom>& candidates,
                           const Database& view_db) {
  FilterAdvice advice;
  advice.improved = rewriting;
  advice.base_cost = OptimizeOrderM2(rewriting, view_db).cost;
  advice.improved_cost = advice.base_cost;

  std::vector<bool> used(candidates.size(), false);
  bool progress = true;
  while (progress) {
    progress = false;
    size_t best_candidate = candidates.size();
    size_t best_cost = advice.improved_cost;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      std::vector<Atom> body = advice.improved.body();
      body.push_back(candidates[i]);
      const size_t cost =
          OptimizeOrderM2(advice.improved.WithBody(std::move(body)), view_db)
              .cost;
      if (cost < best_cost) {
        best_cost = cost;
        best_candidate = i;
      }
    }
    if (best_candidate < candidates.size()) {
      std::vector<Atom> body = advice.improved.body();
      body.push_back(candidates[best_candidate]);
      advice.improved = advice.improved.WithBody(std::move(body));
      advice.filters_added.push_back(candidates[best_candidate]);
      advice.improved_cost = best_cost;
      used[best_candidate] = true;
      progress = true;
    }
  }
  return advice;
}

}  // namespace vbr
