#ifndef VBR_COST_ESTIMATOR_H_
#define VBR_COST_ESTIMATOR_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "cost/m2_optimizer.h"
#include "cq/query.h"
#include "engine/database.h"

namespace vbr {

// Cardinality estimation for the M2 optimizer.
//
// The exact optimizer (m2_optimizer.h) measures every intermediate size by
// evaluating the join — perfect statistics, but a cost the paper's setting
// assigns to the optimizer's estimator instead. This module provides the
// classical System-R estimate: per-relation row counts and per-column
// distinct counts, joined under the independence and containment-of-values
// assumptions. An ablation benchmark compares the plans the estimate picks
// against the measured optimum.

struct RelationStats {
  size_t rows = 0;
  // Distinct value count per column.
  std::vector<size_t> distinct;
};

// Statistics collected from a concrete database (one scan per relation).
class StatsCatalog {
 public:
  static StatsCatalog Collect(const Database& db);

  // Stats for `predicate`, or nullptr when the relation is absent (treated
  // as empty by the estimator).
  const RelationStats* Find(Symbol predicate) const;

 private:
  std::unordered_map<Symbol, RelationStats> stats_;
};

// Estimated size of the join of `atoms` with all variables retained:
// the product of row counts, divided by (a) max-distinct for each extra
// equality a repeated variable induces and (b) distinct for each constant
// selection. Missing relations estimate to zero; the result is clamped to
// at least one row otherwise.
double EstimateJoinSize(const std::vector<Atom>& atoms,
                        const StatsCatalog& catalog);

// M2 subset-DP over ESTIMATED intermediate sizes. The returned cost is the
// estimated cost; evaluate CostOfOrderM2 on the returned order to get its
// true cost.
M2OptimizationResult OptimizeOrderM2Estimated(
    const ConjunctiveQuery& rewriting, const StatsCatalog& catalog);

}  // namespace vbr

#endif  // VBR_COST_ESTIMATOR_H_
