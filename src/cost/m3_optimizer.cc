#include "cost/m3_optimizer.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/budget.h"
#include "common/check.h"
#include "cq/substitution.h"
#include "cq/term.h"
#include "rewrite/rewriting.h"

namespace vbr {

namespace {

// Explores keep/drop decisions along one fixed order.
class DropSearch {
 public:
  DropSearch(const ConjunctiveQuery& query, const ViewSet& views,
             const Database& view_db, std::vector<size_t> order)
      : query_(query),
        views_(views),
        view_db_(view_db),
        order_(std::move(order)) {}

  // Returns the best plan for `rewriting` under this order; accumulates the
  // number of evaluated plans into *plans_evaluated.
  void Run(const ConjunctiveQuery& rewriting, size_t* plans_evaluated,
           M3OptimizationResult* best) {
    drops_.assign(order_.size(), {});
    in_state_.clear();
    Recurse(rewriting, 0, plans_evaluated, best);
  }

 private:
  bool UsedAfter(const ConjunctiveQuery& p, size_t step, Term var) const {
    for (size_t j = step + 1; j < order_.size(); ++j) {
      if (p.subgoal(order_[j]).Mentions(var)) return true;
    }
    return false;
  }

  // Decide the fate of each state variable at `step`, then recurse to the
  // next step; at the end evaluate the plan.
  void Recurse(const ConjunctiveQuery& p, size_t step,
               size_t* plans_evaluated, M3OptimizationResult* best) {
    if (step == order_.size()) {
      // One work unit per complete plan measured; the search runs serially
      // on the caller thread, so the checkpoint is deterministic. The best
      // plan so far was fully measured, so an abort keeps a genuine result.
      if (ResourceGovernor* const governor = ResourceGovernor::Current()) {
        governor->ChargeWork(1);
        if (!governor->CheckPoint("cost.m3")) {
          best->aborted = true;
          return;
        }
      }
      PhysicalPlan plan;
      plan.rewriting = p;
      plan.order = order_;
      plan.drop_after = drops_;
      const size_t cost = ExecutePlan(plan, view_db_).TotalCost();
      ++*plans_evaluated;
      if (cost < best->cost) {
        best->cost = cost;
        best->plan = std::move(plan);
      }
      return;
    }
    if (best->aborted) return;
    // State variables after joining this step's subgoal.
    std::vector<Term> entered;
    for (Term t : p.subgoal(order_[step]).args()) {
      if (t.is_variable() && in_state_.insert(t).second) {
        entered.push_back(t);
      }
    }
    std::vector<Term> candidates(in_state_.begin(), in_state_.end());
    std::sort(candidates.begin(), candidates.end());

    // Forced SR drops, and the renaming-safe optional ones.
    std::vector<Term> optional_drops;
    std::vector<Term> sr_dropped;
    for (Term v : candidates) {
      if (p.head().Mentions(v)) continue;
      if (!UsedAfter(p, step, v)) {
        drops_[step].push_back(v);
        sr_dropped.push_back(v);
        in_state_.erase(v);
      } else {
        optional_drops.push_back(v);
      }
    }
    ChooseOptional(p, step, optional_drops, 0, plans_evaluated, best);
    // Restore the state for the caller.
    for (Term v : sr_dropped) in_state_.insert(v);
    for (Term v : entered) in_state_.erase(v);
    drops_[step].clear();
  }

  // Branch over dropping / keeping each renaming-safe optional variable.
  void ChooseOptional(const ConjunctiveQuery& p, size_t step,
                      const std::vector<Term>& optional, size_t index,
                      size_t* plans_evaluated, M3OptimizationResult* best) {
    if (best->aborted) return;
    if (index == optional.size()) {
      Recurse(p, step + 1, plans_evaluated, best);
      return;
    }
    const Term v = optional[index];
    // Keep branch.
    ChooseOptional(p, step, optional, index + 1, plans_evaluated, best);
    if (in_state_.count(v) == 0) return;  // Dropped by an outer frame.
    // Drop branch, if renaming v in the processed prefix stays equivalent.
    Substitution rename;
    const Term fresh = FreshVar(v.ToString());
    rename.Bind(v, fresh);
    std::vector<Atom> body = p.body();
    for (size_t j = 0; j <= step; ++j) {
      body[order_[j]] = rename.Apply(body[order_[j]]);
    }
    const ConjunctiveQuery renamed = p.WithBody(std::move(body));
    if (!IsEquivalentRewriting(renamed, query_, views_)) return;
    drops_[step].push_back(fresh);
    in_state_.erase(v);
    ChooseOptional(renamed, step, optional, index + 1, plans_evaluated, best);
    in_state_.insert(v);
    drops_[step].pop_back();
  }

  const ConjunctiveQuery& query_;
  const ViewSet& views_;
  const Database& view_db_;
  const std::vector<size_t> order_;
  std::vector<std::vector<Term>> drops_;
  std::unordered_set<Term, TermHash> in_state_;
};

}  // namespace

M3OptimizationResult OptimizeM3(const ConjunctiveQuery& rewriting,
                                const ConjunctiveQuery& query,
                                const ViewSet& views,
                                const Database& view_db,
                                const TraceContext& trace) {
  TraceSpan span(trace, "optimize_m3");
  const size_t n = rewriting.num_subgoals();
  VBR_CHECK_MSG(n >= 1 && n <= 8,
                "M3 optimization enumerates all orders; use <= 8 subgoals");
  M3OptimizationResult best;
  best.cost = std::numeric_limits<size_t>::max();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  size_t evaluated = 0;
  do {
    DropSearch search(query, views, view_db, order);
    search.Run(rewriting, &evaluated, &best);
  } while (!best.aborted &&
           std::next_permutation(order.begin(), order.end()));
  best.plans_evaluated = evaluated;
  if (best.aborted) span.AddAttribute("aborted", true);
  span.AddAttribute("subgoals", static_cast<uint64_t>(n));
  span.AddAttribute("cost", static_cast<uint64_t>(best.cost));
  span.AddAttribute("plans_evaluated", static_cast<uint64_t>(evaluated));
  return best;
}

}  // namespace vbr
