#include "cost/supplementary.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/check.h"
#include "cq/substitution.h"
#include "cq/term.h"
#include "rewrite/rewriting.h"

namespace vbr {

namespace {

// Variables of `atom` as a set.
void InsertVars(const Atom& atom, std::unordered_set<Term, TermHash>* out) {
  for (Term t : atom.args()) {
    if (t.is_variable()) out->insert(t);
  }
}

bool UsedAfter(const ConjunctiveQuery& p, const std::vector<size_t>& order,
               size_t step, Term var) {
  for (size_t j = step + 1; j < order.size(); ++j) {
    if (p.subgoal(order[j]).Mentions(var)) return true;
  }
  return false;
}

// Renames `var` to `replacement` inside the subgoals order[0..step] of `p`.
ConjunctiveQuery RenameInPrefix(const ConjunctiveQuery& p,
                                const std::vector<size_t>& order, size_t step,
                                Term var, Term replacement) {
  Substitution subst;
  subst.Bind(var, replacement);
  std::vector<Atom> body = p.body();
  for (size_t j = 0; j <= step; ++j) {
    body[order[j]] = subst.Apply(body[order[j]]);
  }
  return p.WithBody(std::move(body));
}

}  // namespace

std::vector<std::vector<Term>> SupplementaryDrops(
    const ConjunctiveQuery& rewriting, const std::vector<size_t>& order) {
  VBR_CHECK(order.size() == rewriting.num_subgoals());
  std::vector<std::vector<Term>> drops(order.size());
  std::unordered_set<Term, TermHash> in_state;
  for (size_t k = 0; k < order.size(); ++k) {
    InsertVars(rewriting.subgoal(order[k]), &in_state);
    std::vector<Term> dropped;
    for (Term v : in_state) {
      if (rewriting.head().Mentions(v)) continue;
      if (!UsedAfter(rewriting, order, k, v)) dropped.push_back(v);
    }
    std::sort(dropped.begin(), dropped.end());
    for (Term v : dropped) in_state.erase(v);
    drops[k] = std::move(dropped);
  }
  return drops;
}

GeneralizedDropsResult GeneralizedDrops(const ConjunctiveQuery& rewriting,
                                        const ConjunctiveQuery& query,
                                        const ViewSet& views,
                                        const std::vector<size_t>& order) {
  VBR_CHECK(order.size() == rewriting.num_subgoals());
  GeneralizedDropsResult result;
  result.drop_after.resize(order.size());
  result.extra_drops.resize(order.size());
  result.renamed_rewriting = rewriting;

  std::unordered_set<Term, TermHash> in_state;
  for (size_t k = 0; k < order.size(); ++k) {
    InsertVars(result.renamed_rewriting.subgoal(order[k]), &in_state);
    // Deterministic order for reproducible plans.
    std::vector<Term> candidates(in_state.begin(), in_state.end());
    std::sort(candidates.begin(), candidates.end());
    for (Term v : candidates) {
      if (result.renamed_rewriting.head().Mentions(v)) continue;
      if (!UsedAfter(result.renamed_rewriting, order, k, v)) {
        // The classical supplementary-relation drop.
        result.drop_after[k].push_back(v);
        in_state.erase(v);
        continue;
      }
      // The paper's heuristic: rename v in the processed prefix; if the
      // renamed query is still an equivalent rewriting, the equality with
      // the later occurrence was unnecessary and v can leave the state.
      const Term fresh = FreshVar(v.ToString());
      const ConjunctiveQuery renamed =
          RenameInPrefix(result.renamed_rewriting, order, k, v, fresh);
      if (IsEquivalentRewriting(renamed, query, views)) {
        result.renamed_rewriting = renamed;
        result.drop_after[k].push_back(fresh);
        result.extra_drops[k].push_back(fresh);
        in_state.erase(v);
        // `fresh` never enters in_state: it is dropped immediately.
      }
    }
  }
  return result;
}

M3Comparison CompareM3Strategies(const ConjunctiveQuery& rewriting,
                                 const ConjunctiveQuery& query,
                                 const ViewSet& views,
                                 const Database& view_db) {
  const size_t n = rewriting.num_subgoals();
  VBR_CHECK_MSG(n >= 1 && n <= 8,
                "M3 comparison enumerates all orders; use <= 8 subgoals");
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  M3Comparison best;
  best.sr_cost = std::numeric_limits<size_t>::max();
  best.gsr_cost = std::numeric_limits<size_t>::max();
  do {
    PhysicalPlan sr;
    sr.rewriting = rewriting;
    sr.order = order;
    sr.drop_after = SupplementaryDrops(rewriting, order);
    const size_t sr_cost = ExecutePlan(sr, view_db).TotalCost();
    if (sr_cost < best.sr_cost) {
      best.sr_cost = sr_cost;
      best.sr_plan = sr;
    }

    const GeneralizedDropsResult gsr_drops =
        GeneralizedDrops(rewriting, query, views, order);
    PhysicalPlan gsr;
    gsr.rewriting = gsr_drops.renamed_rewriting;
    gsr.order = order;
    gsr.drop_after = gsr_drops.drop_after;
    const size_t gsr_cost = ExecutePlan(gsr, view_db).TotalCost();
    if (gsr_cost < best.gsr_cost) {
      best.gsr_cost = gsr_cost;
      best.gsr_plan = gsr;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

}  // namespace vbr
