#ifndef VBR_COST_COST_MODEL_H_
#define VBR_COST_COST_MODEL_H_

#include <cstddef>
#include <string_view>

#include "cq/query.h"

namespace vbr {

// The paper's three cost models (Table 1):
//
//   M1 — a physical plan is the set of view subgoals; its cost is the number
//        of subgoals (joins dominate, so fewer is better).
//   M2 — a physical plan is an ordering g1..gn; its cost is
//        sum_i (size(g_i) + size(IR_i)) where IR_i joins the first i
//        subgoals with ALL attributes retained.
//   M3 — each step may also drop attributes; the intermediate relations
//        become generalized supplementary relations GSR_i and the cost is
//        sum_i (size(g_i) + size(GSR_i)).
enum class CostModel {
  kM1,
  kM2,
  kM3,
};

// Canonical short names ("M1"/"M2"/"M3"), shared by EXPLAIN, the service
// trace attributes, the CLI, and the wire protocols.
inline const char* CostModelName(CostModel model) {
  switch (model) {
    case CostModel::kM1:
      return "M1";
    case CostModel::kM2:
      return "M2";
    case CostModel::kM3:
      return "M3";
  }
  return "?";
}

// Parses "m1"/"M1"/"m2"/... into `out`. Returns false on anything else.
inline bool CostModelFromName(std::string_view name, CostModel* out) {
  if (name.size() != 2 || (name[0] != 'm' && name[0] != 'M')) return false;
  switch (name[1]) {
    case '1':
      *out = CostModel::kM1;
      return true;
    case '2':
      *out = CostModel::kM2;
      return true;
    case '3':
      *out = CostModel::kM3;
      return true;
  }
  return false;
}

// M1 cost of a logical plan: its subgoal count.
inline size_t CostM1(const ConjunctiveQuery& rewriting) {
  return rewriting.num_subgoals();
}

}  // namespace vbr

#endif  // VBR_COST_COST_MODEL_H_
