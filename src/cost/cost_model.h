#ifndef VBR_COST_COST_MODEL_H_
#define VBR_COST_COST_MODEL_H_

#include <cstddef>

#include "cq/query.h"

namespace vbr {

// The paper's three cost models (Table 1):
//
//   M1 — a physical plan is the set of view subgoals; its cost is the number
//        of subgoals (joins dominate, so fewer is better).
//   M2 — a physical plan is an ordering g1..gn; its cost is
//        sum_i (size(g_i) + size(IR_i)) where IR_i joins the first i
//        subgoals with ALL attributes retained.
//   M3 — each step may also drop attributes; the intermediate relations
//        become generalized supplementary relations GSR_i and the cost is
//        sum_i (size(g_i) + size(GSR_i)).
enum class CostModel {
  kM1,
  kM2,
  kM3,
};

// M1 cost of a logical plan: its subgoal count.
inline size_t CostM1(const ConjunctiveQuery& rewriting) {
  return rewriting.num_subgoals();
}

}  // namespace vbr

#endif  // VBR_COST_COST_MODEL_H_
