#ifndef VBR_COST_PHYSICAL_PLAN_H_
#define VBR_COST_PHYSICAL_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "cq/query.h"
#include "engine/database.h"
#include "engine/relation.h"

namespace vbr {

// A physical plan for a rewriting: a join order over its subgoals, each step
// optionally annotated with the variables dropped once the step completes
// (cost model M3; leave the drop lists empty for M2 semantics).
struct PhysicalPlan {
  // The logical plan (a rewriting over view predicates).
  ConjunctiveQuery rewriting;
  // Permutation of [0, rewriting.num_subgoals()).
  std::vector<size_t> order;
  // drop_after[k] lists variables dropped after the k-th step of `order`.
  // Must be empty or have order.size() entries.
  std::vector<std::vector<Term>> drop_after;

  std::string ToString() const;
};

// The result of executing a physical plan against materialized views.
struct PlanExecution {
  // size(g_i) for each step (raw view-relation sizes).
  std::vector<size_t> relation_sizes;
  // size of the state after each step and its drops: IR_i under M2
  // semantics (no drops), GSR_i under M3.
  std::vector<size_t> state_sizes;
  // Answer projected onto the rewriting's head.
  Relation answer{0};
  // True when the thread's ResourceGovernor (typically its memory budget)
  // stopped the execution early; `answer` is then empty and TotalCost()
  // reports SIZE_MAX so an aborted measurement loses every cost comparison.
  bool aborted = false;

  // The paper's cost: sum_i (size(g_i) + size(state_i)); SIZE_MAX when the
  // execution aborted.
  size_t TotalCost() const;
};

// Executes `plan` over `view_db` step by step: each step joins the next
// subgoal's relation into the running state (equating shared retained
// variables and applying constant selections), then projects away the
// step's dropped variables. Head variables must never be dropped
// (VBR_CHECKed).
PlanExecution ExecutePlan(const PhysicalPlan& plan, const Database& view_db);

}  // namespace vbr

#endif  // VBR_COST_PHYSICAL_PLAN_H_
