#ifndef VBR_WORKLOAD_DATA_GEN_H_
#define VBR_WORKLOAD_DATA_GEN_H_

#include <cstdint>

#include "cq/query.h"
#include "engine/database.h"

namespace vbr {

// Synthetic base-relation instances for the M2/M3 experiments. The paper's
// cost models need view-relation and intermediate-relation sizes; we obtain
// them by materializing views over generated base data.

struct DataConfig {
  // Rows per base relation (before deduplication).
  size_t rows_per_relation = 1000;
  // Attribute values are drawn from [0, domain_size).
  int64_t domain_size = 100;
  // 0 = uniform; larger values skew towards small values with a power-law
  // weight value ~ u^(1+skew), producing heavy joins on popular keys.
  double skew = 0.0;
  uint64_t seed = 7;
};

// Creates an instance for every base predicate mentioned in `query` or any
// view body (builtin predicates excluded). Arities are taken from the
// atoms; conflicting arities abort.
Database GenerateBaseData(const ConjunctiveQuery& query, const ViewSet& views,
                          const DataConfig& config);

}  // namespace vbr

#endif  // VBR_WORKLOAD_DATA_GEN_H_
