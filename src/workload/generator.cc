#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "cq/term.h"

namespace vbr {

namespace {

Term PoolPredicateVar(const std::string& prefix, size_t i) {
  return Var(prefix + std::to_string(i));
}

std::string PredicateName(size_t i) { return "p" + std::to_string(i); }

// Draws predicate indices from the pool, uniformly (s == 0) or with Zipf
// skew P(k) proportional to 1/(k+1)^s. The uniform path calls UniformInt
// exactly as the pre-skew generator did, so existing seeds keep producing
// bit-identical workloads.
class PredicatePicker {
 public:
  PredicatePicker(size_t num_predicates, double zipf_s)
      : num_predicates_(num_predicates) {
    VBR_CHECK(num_predicates >= 1);
    VBR_CHECK(zipf_s >= 0);
    if (zipf_s == 0) return;
    cdf_.reserve(num_predicates);
    double total = 0;
    for (size_t k = 0; k < num_predicates; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), zipf_s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Pick(Rng* rng) const {
    if (cdf_.empty()) {
      return static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(num_predicates_) - 1));
    }
    const double u = rng->UniformDouble();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return std::min<size_t>(it - cdf_.begin(), num_predicates_ - 1);
  }

  size_t num_predicates() const { return num_predicates_; }

 private:
  size_t num_predicates_;
  std::vector<double> cdf_;  // empty = uniform
};

// Removes `count` randomly chosen variables from `head_vars` (never below
// one variable, so heads stay nonempty and queries meaningful).
std::vector<Term> DropVars(std::vector<Term> head_vars, size_t count,
                           Rng* rng) {
  while (count > 0 && head_vars.size() > 1) {
    const size_t victim = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(head_vars.size()) - 1));
    head_vars.erase(head_vars.begin() + victim);
    --count;
  }
  return head_vars;
}

// Builds a star-shaped body: each subgoal is p_k(C, X_i) sharing the center
// C. Variable names are namespaced by `ns` so views and query stay apart.
std::vector<Atom> StarBody(const std::string& ns, size_t num_subgoals,
                           const PredicatePicker& picker, Rng* rng) {
  std::vector<Atom> body;
  const Term center = Var(ns + "C");
  for (size_t i = 0; i < num_subgoals; ++i) {
    const size_t p = picker.Pick(rng);
    body.emplace_back(PredicateName(p),
                      std::vector<Term>{center, PoolPredicateVar(ns + "X", i)});
  }
  return body;
}

// Builds a chain body p_k1(X0,X1), p_k2(X1,X2), ...
std::vector<Atom> ChainBody(const std::string& ns, size_t num_subgoals,
                            const PredicatePicker& picker, Rng* rng) {
  std::vector<Atom> body;
  for (size_t i = 0; i < num_subgoals; ++i) {
    const size_t p = picker.Pick(rng);
    body.emplace_back(PredicateName(p),
                      std::vector<Term>{PoolPredicateVar(ns + "X", i),
                                        PoolPredicateVar(ns + "X", i + 1)});
  }
  return body;
}

// Random binary subgoals over a pool of num_subgoals + 1 variables.
std::vector<Atom> RandomBody(const std::string& ns, size_t num_subgoals,
                             const PredicatePicker& picker, Rng* rng) {
  std::vector<Atom> body;
  const int64_t pool = static_cast<int64_t>(num_subgoals) + 1;
  for (size_t i = 0; i < num_subgoals; ++i) {
    const size_t p = picker.Pick(rng);
    const size_t a = static_cast<size_t>(rng->UniformInt(0, pool - 1));
    size_t b = static_cast<size_t>(rng->UniformInt(0, pool - 1));
    body.emplace_back(PredicateName(p),
                      std::vector<Term>{PoolPredicateVar(ns + "X", a),
                                        PoolPredicateVar(ns + "X", b)});
  }
  return body;
}

std::vector<Atom> MakeBody(QueryShape shape, const std::string& ns,
                           size_t num_subgoals, const PredicatePicker& picker,
                           Rng* rng) {
  switch (shape) {
    case QueryShape::kStar:
      return StarBody(ns, num_subgoals, picker, rng);
    case QueryShape::kChain:
      return ChainBody(ns, num_subgoals, picker, rng);
    case QueryShape::kRandom:
      return RandomBody(ns, num_subgoals, picker, rng);
  }
  return {};
}

}  // namespace

Workload GenerateWorkload(const WorkloadConfig& config) {
  VBR_CHECK(config.num_query_subgoals >= 1);
  VBR_CHECK(config.num_predicates >= 1);
  VBR_CHECK(config.min_view_subgoals >= 1);
  VBR_CHECK(config.max_view_subgoals >= config.min_view_subgoals);
  Rng rng(config.seed);
  const PredicatePicker picker(config.num_predicates, config.predicate_zipf_s);

  Workload workload;

  const bool endpoints_only =
      config.chain_endpoints_only && config.shape == QueryShape::kChain;

  // The query.
  std::vector<Atom> body = MakeBody(config.shape, "Q", config.num_query_subgoals,
                                    picker, &rng);
  std::vector<Term> head_vars;
  if (endpoints_only) {
    head_vars = {body.front().arg(0), body.back().arg(1)};
  } else {
    head_vars = DropVars(CollectVariables(body),
                         config.num_nondistinguished_query_vars, &rng);
  }
  workload.query = ConjunctiveQuery(Atom("q", head_vars), std::move(body));

  size_t view_counter = 0;
  auto view_name = [&view_counter] {
    return "w" + std::to_string(view_counter++);
  };

  // Coverage views: one single-subgoal all-distinguished view per distinct
  // query predicate, guaranteeing that a rewriting exists.
  if (config.ensure_rewriting_exists) {
    std::unordered_set<Symbol> seen;
    for (const Atom& a : workload.query.body()) {
      if (!seen.insert(a.predicate()).second) continue;
      const Term x = Var("VA");
      const Term y = Var("VB");
      std::vector<Atom> vbody = {Atom(a.predicate(), {x, y})};
      workload.views.emplace_back(Atom(view_name(), {x, y}),
                                  std::move(vbody));
    }
  }

  // Random views until the requested count.
  while (workload.views.size() < config.num_views) {
    const size_t subgoals = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(config.min_view_subgoals),
        static_cast<int64_t>(config.max_view_subgoals)));
    const std::string ns = "V" + std::to_string(view_counter) + "_";
    std::vector<Atom> vbody =
        MakeBody(config.shape, ns, subgoals, picker, &rng);
    // Single-subgoal views keep every variable distinguished (paper note).
    std::vector<Term> vhead;
    if (endpoints_only && subgoals > 1) {
      vhead = {vbody.front().arg(0), vbody.back().arg(1)};
    } else {
      const size_t to_drop =
          subgoals == 1 ? 0 : config.num_nondistinguished_view_vars;
      vhead = DropVars(CollectVariables(vbody), to_drop, &rng);
    }
    workload.views.emplace_back(Atom(view_name(), vhead), std::move(vbody));
  }
  return workload;
}

// ---------------------------------------------------------------------------
// Massive catalogs

namespace {

// One all-distinguished query for the scenario, deterministic in
// (config, seed, index). Namespacing variables by the index keeps queries
// from different indices structurally independent.
ConjunctiveQuery MakeCatalogQuery(const MassiveCatalogConfig& config,
                                  const PredicatePicker& picker,
                                  uint64_t seed, size_t index) {
  Rng root(seed);
  Rng rng = root.Fork(index);
  const std::string ns = "Q" + std::to_string(index) + "_";
  std::vector<Atom> body =
      MakeBody(config.shape, ns, config.num_query_subgoals, picker, &rng);
  std::vector<Term> head_vars = CollectVariables(body);
  return ConjunctiveQuery(Atom("q" + std::to_string(index), head_vars),
                          std::move(body));
}

}  // namespace

Workload GenerateMassiveCatalog(const MassiveCatalogConfig& config) {
  VBR_CHECK(config.num_query_subgoals >= 1);
  VBR_CHECK(config.num_predicates >= 1);
  VBR_CHECK(config.min_view_subgoals >= 1);
  VBR_CHECK(config.max_view_subgoals >= config.min_view_subgoals);
  const PredicatePicker picker(config.num_predicates, config.predicate_zipf_s);
  Rng rng(config.seed);

  Workload workload;
  workload.views.reserve(config.num_views + (config.cover_all_predicates
                                                 ? config.num_predicates
                                                 : 0));
  for (size_t i = 0; i < config.num_views; ++i) {
    const size_t subgoals = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(config.min_view_subgoals),
        static_cast<int64_t>(config.max_view_subgoals)));
    const std::string ns = "V" + std::to_string(i) + "_";
    std::vector<Atom> vbody =
        MakeBody(config.shape, ns, subgoals, picker, &rng);
    // All-distinguished heads: keeps every random view usable in a
    // rewriting and the catalog maximally adversarial for candidate
    // selection (nothing is pruned for head reasons, only by body keys).
    std::vector<Term> vhead = CollectVariables(vbody);
    workload.views.emplace_back(Atom("w" + std::to_string(i), vhead),
                                std::move(vbody));
  }
  if (config.cover_all_predicates) {
    // One singleton identity view per pool predicate, so any query over
    // the pool has a rewriting regardless of what the random draw above
    // happened to cover.
    for (size_t p = 0; p < config.num_predicates; ++p) {
      const Term x = Var("CA");
      const Term y = Var("CB");
      std::vector<Atom> vbody = {Atom(PredicateName(p), {x, y})};
      workload.views.emplace_back(
          Atom("w" + std::to_string(config.num_views + p), {x, y}),
          std::move(vbody));
    }
  }
  workload.query = MakeCatalogQuery(config, picker, config.seed, 0);
  return workload;
}

std::vector<ConjunctiveQuery> GenerateCatalogQueries(
    const MassiveCatalogConfig& config, size_t count, uint64_t seed) {
  const PredicatePicker picker(config.num_predicates, config.predicate_zipf_s);
  std::vector<ConjunctiveQuery> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(MakeCatalogQuery(config, picker, seed, i));
  }
  return queries;
}

}  // namespace vbr
