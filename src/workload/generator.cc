#include "workload/generator.h"

#include <string>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"
#include "cq/term.h"

namespace vbr {

namespace {

Term PoolPredicateVar(const std::string& prefix, size_t i) {
  return Var(prefix + std::to_string(i));
}

std::string PredicateName(size_t i) { return "p" + std::to_string(i); }

// Removes `count` randomly chosen variables from `head_vars` (never below
// one variable, so heads stay nonempty and queries meaningful).
std::vector<Term> DropVars(std::vector<Term> head_vars, size_t count,
                           Rng* rng) {
  while (count > 0 && head_vars.size() > 1) {
    const size_t victim = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(head_vars.size()) - 1));
    head_vars.erase(head_vars.begin() + victim);
    --count;
  }
  return head_vars;
}

// Builds a star-shaped body: each subgoal is p_k(C, X_i) sharing the center
// C. Variable names are namespaced by `ns` so views and query stay apart.
std::vector<Atom> StarBody(const std::string& ns, size_t num_subgoals,
                           size_t num_predicates, Rng* rng) {
  std::vector<Atom> body;
  const Term center = Var(ns + "C");
  for (size_t i = 0; i < num_subgoals; ++i) {
    const size_t p = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(num_predicates) - 1));
    body.emplace_back(PredicateName(p),
                      std::vector<Term>{center, PoolPredicateVar(ns + "X", i)});
  }
  return body;
}

// Builds a chain body p_k1(X0,X1), p_k2(X1,X2), ...
std::vector<Atom> ChainBody(const std::string& ns, size_t num_subgoals,
                            size_t num_predicates, Rng* rng) {
  std::vector<Atom> body;
  for (size_t i = 0; i < num_subgoals; ++i) {
    const size_t p = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(num_predicates) - 1));
    body.emplace_back(PredicateName(p),
                      std::vector<Term>{PoolPredicateVar(ns + "X", i),
                                        PoolPredicateVar(ns + "X", i + 1)});
  }
  return body;
}

// Random binary subgoals over a pool of num_subgoals + 1 variables.
std::vector<Atom> RandomBody(const std::string& ns, size_t num_subgoals,
                             size_t num_predicates, Rng* rng) {
  std::vector<Atom> body;
  const int64_t pool = static_cast<int64_t>(num_subgoals) + 1;
  for (size_t i = 0; i < num_subgoals; ++i) {
    const size_t p = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(num_predicates) - 1));
    const size_t a = static_cast<size_t>(rng->UniformInt(0, pool - 1));
    size_t b = static_cast<size_t>(rng->UniformInt(0, pool - 1));
    body.emplace_back(PredicateName(p),
                      std::vector<Term>{PoolPredicateVar(ns + "X", a),
                                        PoolPredicateVar(ns + "X", b)});
  }
  return body;
}

std::vector<Atom> MakeBody(QueryShape shape, const std::string& ns,
                           size_t num_subgoals, size_t num_predicates,
                           Rng* rng) {
  switch (shape) {
    case QueryShape::kStar:
      return StarBody(ns, num_subgoals, num_predicates, rng);
    case QueryShape::kChain:
      return ChainBody(ns, num_subgoals, num_predicates, rng);
    case QueryShape::kRandom:
      return RandomBody(ns, num_subgoals, num_predicates, rng);
  }
  return {};
}

}  // namespace

Workload GenerateWorkload(const WorkloadConfig& config) {
  VBR_CHECK(config.num_query_subgoals >= 1);
  VBR_CHECK(config.num_predicates >= 1);
  VBR_CHECK(config.min_view_subgoals >= 1);
  VBR_CHECK(config.max_view_subgoals >= config.min_view_subgoals);
  Rng rng(config.seed);

  Workload workload;

  const bool endpoints_only =
      config.chain_endpoints_only && config.shape == QueryShape::kChain;

  // The query.
  std::vector<Atom> body = MakeBody(config.shape, "Q", config.num_query_subgoals,
                                    config.num_predicates, &rng);
  std::vector<Term> head_vars;
  if (endpoints_only) {
    head_vars = {body.front().arg(0), body.back().arg(1)};
  } else {
    head_vars = DropVars(CollectVariables(body),
                         config.num_nondistinguished_query_vars, &rng);
  }
  workload.query = ConjunctiveQuery(Atom("q", head_vars), std::move(body));

  size_t view_counter = 0;
  auto view_name = [&view_counter] {
    return "w" + std::to_string(view_counter++);
  };

  // Coverage views: one single-subgoal all-distinguished view per distinct
  // query predicate, guaranteeing that a rewriting exists.
  if (config.ensure_rewriting_exists) {
    std::unordered_set<Symbol> seen;
    for (const Atom& a : workload.query.body()) {
      if (!seen.insert(a.predicate()).second) continue;
      const Term x = Var("VA");
      const Term y = Var("VB");
      std::vector<Atom> vbody = {Atom(a.predicate(), {x, y})};
      workload.views.emplace_back(Atom(view_name(), {x, y}),
                                  std::move(vbody));
    }
  }

  // Random views until the requested count.
  while (workload.views.size() < config.num_views) {
    const size_t subgoals = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(config.min_view_subgoals),
        static_cast<int64_t>(config.max_view_subgoals)));
    const std::string ns = "V" + std::to_string(view_counter) + "_";
    std::vector<Atom> vbody =
        MakeBody(config.shape, ns, subgoals, config.num_predicates, &rng);
    // Single-subgoal views keep every variable distinguished (paper note).
    std::vector<Term> vhead;
    if (endpoints_only && subgoals > 1) {
      vhead = {vbody.front().arg(0), vbody.back().arg(1)};
    } else {
      const size_t to_drop =
          subgoals == 1 ? 0 : config.num_nondistinguished_view_vars;
      vhead = DropVars(CollectVariables(vbody), to_drop, &rng);
    }
    workload.views.emplace_back(Atom(view_name(), vhead), std::move(vbody));
  }
  return workload;
}

}  // namespace vbr
