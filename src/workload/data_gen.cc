#include "workload/data_gen.h"

#include <cmath>
#include <map>

#include "common/check.h"
#include "common/rng.h"

namespace vbr {

namespace {

Value DrawValue(const DataConfig& config, Rng* rng) {
  if (config.skew <= 0.0) {
    return rng->UniformInt(0, config.domain_size - 1);
  }
  // Power-law skew: u^(1+skew) concentrates mass near zero.
  const double u = rng->UniformDouble();
  const double powed = std::pow(u, 1.0 + config.skew);
  Value v = static_cast<Value>(powed * static_cast<double>(config.domain_size));
  if (v >= config.domain_size) v = config.domain_size - 1;
  return v;
}

void CollectPredicates(const std::vector<Atom>& atoms,
                       std::map<Symbol, size_t>* arities) {
  for (const Atom& a : atoms) {
    if (a.is_builtin()) continue;
    auto [it, inserted] = arities->emplace(a.predicate(), a.arity());
    VBR_CHECK_MSG(it->second == a.arity(),
                  "predicate used with conflicting arities");
  }
}

}  // namespace

Database GenerateBaseData(const ConjunctiveQuery& query, const ViewSet& views,
                          const DataConfig& config) {
  std::map<Symbol, size_t> arities;
  CollectPredicates(query.body(), &arities);
  for (const View& v : views) CollectPredicates(v.body(), &arities);

  Database db;
  Rng rng(config.seed);
  std::vector<Value> row;
  for (const auto& [predicate, arity] : arities) {
    Relation& rel = db.GetOrCreate(predicate, arity);
    row.assign(arity, 0);
    for (size_t i = 0; i < config.rows_per_relation; ++i) {
      for (size_t j = 0; j < arity; ++j) row[j] = DrawValue(config, &rng);
      rel.Insert(row);
    }
  }
  return db;
}

}  // namespace vbr
