#ifndef VBR_WORKLOAD_GENERATOR_H_
#define VBR_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "cq/query.h"

namespace vbr {

// Query/view workload generator mirroring Section 7's experimental setup:
// star, chain, and random-shaped conjunctive queries over a pool of binary
// base relations, with views of 1-3 subgoals of the same shape and a
// configurable number of nondistinguished variables.

enum class QueryShape {
  kStar,   // All subgoals share a central variable: p(C, X_i).
  kChain,  // p1(X0,X1), p2(X1,X2), ...
  kRandom, // Random binary subgoals over a small variable pool.
};

struct WorkloadConfig {
  QueryShape shape = QueryShape::kStar;
  // Number of query subgoals (the paper uses 8).
  size_t num_query_subgoals = 8;
  // Size of the base-relation pool (all binary).
  size_t num_predicates = 10;
  // Number of views to generate, inclusive of the coverage views injected
  // when ensure_rewriting_exists is set.
  size_t num_views = 100;
  // Each view gets a uniform subgoal count in [min, max] (the paper uses
  // 1..3).
  size_t min_view_subgoals = 1;
  size_t max_view_subgoals = 3;
  // How many query variables to remove from the query head (0 = all
  // distinguished, the paper's first configuration; 1 = the second).
  size_t num_nondistinguished_query_vars = 0;
  // Likewise for each view with more than one subgoal (single-subgoal views
  // keep all variables distinguished, following the paper).
  size_t num_nondistinguished_view_vars = 0;
  // Chains only: expose just the first and last chain variable in query and
  // view heads. The paper notes this configuration admits very few
  // rewritings, which is why its main runs keep all variables distinguished.
  bool chain_endpoints_only = false;
  // Inject one single-subgoal all-distinguished view per distinct query
  // predicate so that a rewriting is guaranteed to exist (the paper ignores
  // queries without rewritings; this realizes the same population).
  bool ensure_rewriting_exists = true;
  uint64_t seed = 1;
};

struct Workload {
  ConjunctiveQuery query;
  ViewSet views;
};

// Generates a workload. View head predicates are named w0, w1, ...; base
// predicates p0, p1, ... within the configured pool.
Workload GenerateWorkload(const WorkloadConfig& config);

}  // namespace vbr

#endif  // VBR_WORKLOAD_GENERATOR_H_
