#ifndef VBR_WORKLOAD_GENERATOR_H_
#define VBR_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "cq/query.h"

namespace vbr {

// Query/view workload generator mirroring Section 7's experimental setup:
// star, chain, and random-shaped conjunctive queries over a pool of binary
// base relations, with views of 1-3 subgoals of the same shape and a
// configurable number of nondistinguished variables.

enum class QueryShape {
  kStar,   // All subgoals share a central variable: p(C, X_i).
  kChain,  // p1(X0,X1), p2(X1,X2), ...
  kRandom, // Random binary subgoals over a small variable pool.
};

struct WorkloadConfig {
  QueryShape shape = QueryShape::kStar;
  // Number of query subgoals (the paper uses 8).
  size_t num_query_subgoals = 8;
  // Size of the base-relation pool (all binary).
  size_t num_predicates = 10;
  // Number of views to generate, inclusive of the coverage views injected
  // when ensure_rewriting_exists is set.
  size_t num_views = 100;
  // Each view gets a uniform subgoal count in [min, max] (the paper uses
  // 1..3).
  size_t min_view_subgoals = 1;
  size_t max_view_subgoals = 3;
  // How many query variables to remove from the query head (0 = all
  // distinguished, the paper's first configuration; 1 = the second).
  size_t num_nondistinguished_query_vars = 0;
  // Likewise for each view with more than one subgoal (single-subgoal views
  // keep all variables distinguished, following the paper).
  size_t num_nondistinguished_view_vars = 0;
  // Chains only: expose just the first and last chain variable in query and
  // view heads. The paper notes this configuration admits very few
  // rewritings, which is why its main runs keep all variables distinguished.
  bool chain_endpoints_only = false;
  // Inject one single-subgoal all-distinguished view per distinct query
  // predicate so that a rewriting is guaranteed to exist (the paper ignores
  // queries without rewritings; this realizes the same population).
  bool ensure_rewriting_exists = true;
  // Zipf exponent for predicate choice. 0 keeps the exact legacy uniform
  // draw (bit-for-bit identical streams for existing seeds); s > 0 skews
  // subgoals toward low-numbered predicates with P(p_k) proportional to
  // 1/(k+1)^s, modelling hot relations in a large schema.
  double predicate_zipf_s = 0.0;
  uint64_t seed = 1;
};

struct Workload {
  ConjunctiveQuery query;
  ViewSet views;
};

// Generates a workload. View head predicates are named w0, w1, ...; base
// predicates p0, p1, ... within the configured pool.
Workload GenerateWorkload(const WorkloadConfig& config);

// -- Massive catalogs --------------------------------------------------------

// Scenario for the 10^2..10^6-view scaling experiments: a very large view
// catalog over a wide predicate pool, with Zipf-skewed predicate
// popularity so that realistic queries touch a small hot subset of the
// schema and most catalog views are irrelevant to any one query — the
// regime where indexed candidate selection beats a linear scan.
struct MassiveCatalogConfig {
  // Number of RANDOM views. When cover_all_predicates is set, one
  // single-subgoal all-distinguished view per pool predicate is appended
  // on top, so the generated catalog holds num_views + num_predicates
  // views total and every query is guaranteed a rewriting.
  size_t num_views = 10'000;
  size_t num_predicates = 256;
  // Zipf exponent shared by view and query predicate draws (see
  // WorkloadConfig::predicate_zipf_s). 1.0 is classic Zipf.
  double predicate_zipf_s = 1.0;
  QueryShape shape = QueryShape::kStar;
  size_t num_query_subgoals = 6;
  size_t min_view_subgoals = 1;
  size_t max_view_subgoals = 3;
  uint64_t seed = 1;
  bool cover_all_predicates = true;
};

// Generates the catalog plus one representative query (all-distinguished,
// as GenerateCatalogQueries would produce for index 0). Deterministic in
// the config.
Workload GenerateMassiveCatalog(const MassiveCatalogConfig& config);

// `count` independent all-distinguished queries against the same catalog
// scenario (each is deterministic in (config, seed, its index), so callers
// can pregenerate a batch and cycle it). All-distinguished heads keep
// every query rewritable whenever cover_all_predicates is set.
std::vector<ConjunctiveQuery> GenerateCatalogQueries(
    const MassiveCatalogConfig& config, size_t count, uint64_t seed);

}  // namespace vbr

#endif  // VBR_WORKLOAD_GENERATOR_H_
