#ifndef VBR_BASELINE_MINICON_H_
#define VBR_BASELINE_MINICON_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cq/atom.h"
#include "cq/query.h"
#include "rewrite/union_rewriting.h"
#include "rewrite/view_index.h"

namespace vbr {

// The MiniCon algorithm (Pottinger & Levy, VLDB 2000), the open-world
// baseline Section 4.3 compares CoreCover against.
//
// MiniCon forms MiniCon Descriptions (MCDs): per view, a head homomorphism
// plus a mapping from a MINIMAL set of query subgoals into the view body
// satisfying the same properties (2) and (3) as tuple-cores. Contained
// rewritings are combinations of MCDs with pairwise-disjoint subgoal sets
// covering the query. Because MCDs are minimal and must tile the query
// disjointly, MiniCon can emit rewritings with redundant subgoals that
// CoreCover avoids (Example 4.2); under the closed-world assumption we then
// filter the combinations for equivalent rewritings.

struct Mcd {
  size_t view_index = 0;
  // Subgoals of the minimized query this MCD covers (its minimal set G).
  uint64_t covered_mask = 0;
  // The view literal this MCD contributes to a rewriting.
  Atom literal;
};

struct MiniConResult {
  ConjunctiveQuery minimized_query;
  std::vector<Mcd> mcds;
  // Contained rewritings from disjoint MCD combinations (deduplicated).
  std::vector<ConjunctiveQuery> contained_rewritings;
  // The subset of contained_rewritings that are equivalent rewritings under
  // the closed-world assumption.
  std::vector<ConjunctiveQuery> equivalent_rewritings;
  size_t combinations_tested = 0;
  bool truncated = false;
  // True when the thread's ResourceGovernor stopped the run early. The
  // result then holds whatever was built before the abort; every listed
  // rewriting is still genuine (MCD combination / equivalence-verified), but
  // the enumeration is incomplete.
  bool aborted = false;
};

// `filter` selects candidate views before MCD construction (kAnyOverlap
// mode: a view with no (predicate, arity) in common with the query can seed
// no MCD — the same test BuildAll's empty-bucket check performs per seed,
// hoisted to skip whole views). MCD view_index values always refer to the
// ORIGINAL catalog positions in `views`, filtered or not.
MiniConResult MiniCon(const ConjunctiveQuery& query, const ViewSet& views,
                      size_t max_results = 1024,
                      const CandidateFilterOptions& filter = {});

// The union of all contained rewritings MiniCon produced — its
// maximally-contained rewriting, the open-world answer the paper contrasts
// with closed-world equivalent rewritings. CHECK-fails if `result` holds no
// contained rewriting.
UnionQuery MaximallyContainedRewriting(const MiniConResult& result);

}  // namespace vbr

#endif  // VBR_BASELINE_MINICON_H_
