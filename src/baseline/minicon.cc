#include "baseline/minicon.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/budget.h"
#include "common/check.h"
#include "cq/containment.h"
#include "cq/homomorphism.h"
#include "cq/term.h"
#include "rewrite/expansion.h"
#include "rewrite/rewriting.h"

namespace vbr {

namespace {

// Union-find over the view's variables, tracking per class whether it
// contains a head variable, an existential variable, or an attached
// constant (from a selection by a query constant). The head homomorphism of
// an MCD is exactly the partition of head variables these classes induce.
class ViewVarClasses {
 public:
  ViewVarClasses(const ConjunctiveQuery& view) {
    for (Term t : view.Variables()) {
      const Symbol s = t.symbol();
      parent_.emplace(s, s);
      Info info;
      info.has_head_var = view.head().Mentions(t);
      info.has_existential = !info.has_head_var;
      info_.emplace(s, info);
    }
  }

  Symbol Find(Symbol v) {
    Symbol root = v;
    while (parent_.at(root) != root) root = parent_.at(root);
    while (parent_.at(v) != root) {
      Symbol next = parent_.at(v);
      parent_[v] = root;
      v = next;
    }
    return root;
  }

  // Merges the classes of a and b. Returns false (leaving a consistent but
  // possibly partially-merged state; callers copy the whole structure per
  // branch) if the merge is not expressible by a head homomorphism: a class
  // containing an existential variable must stay a singleton without
  // constants.
  bool Union(Symbol a, Symbol b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    const Info& ia = info_.at(a);
    const Info& ib = info_.at(b);
    if (ia.has_existential || ib.has_existential) return false;
    if (ia.constant.is_valid() && ib.constant.is_valid() &&
        ia.constant != ib.constant) {
      return false;
    }
    parent_[b] = a;
    Info& merged = info_[a];
    merged.has_head_var = ia.has_head_var || ib.has_head_var;
    if (!merged.constant.is_valid()) merged.constant = ib.constant;
    return true;
  }

  // Attaches a selection constant to v's class; fails on conflicts or
  // existential classes.
  bool AttachConstant(Symbol v, Term constant) {
    const Symbol root = Find(v);
    Info& info = info_[root];
    if (info.has_existential) return false;
    if (info.constant.is_valid()) return info.constant == constant;
    info.constant = constant;
    return true;
  }

  bool HasExistential(Symbol v) { return info_.at(Find(v)).has_existential; }
  bool HasHeadVar(Symbol v) { return info_.at(Find(v)).has_head_var; }
  Term ConstantOf(Symbol v) { return info_.at(Find(v)).constant; }

 private:
  struct Info {
    bool has_head_var = false;
    bool has_existential = false;
    Term constant;  // invalid if none
  };
  std::unordered_map<Symbol, Symbol> parent_;
  std::unordered_map<Symbol, Info> info_;
};

// The in-progress mapping phi from query terms into a view's variable
// classes (or constants), branched depth-first over target atoms.
struct McdState {
  ViewVarClasses classes;
  // Query variable -> view term (variable => interpreted through classes).
  std::unordered_map<Symbol, Term> phi;
  uint64_t covered = 0;
  std::vector<size_t> agenda;  // Subgoals that C2 forces into G.
};

class McdBuilder {
 public:
  McdBuilder(const ConjunctiveQuery& query, const ViewSet& views,
             std::vector<size_t> candidates)
      : query_(query), views_(views), candidates_(std::move(candidates)) {
    for (size_t i = 0; i < query.num_subgoals(); ++i) {
      for (Term t : query.subgoal(i).args()) {
        if (t.is_variable()) {
          subgoals_of_var_[t.symbol()] |= uint64_t{1} << i;
        }
      }
    }
  }

  // Builds all MCDs, or — when the governor runs out mid-way — a prefix of
  // them. Each emitted MCD is individually valid, so combinations over a
  // prefix remain genuine contained rewritings; only completeness is lost.
  std::vector<Mcd> BuildAll(bool* aborted) {
    std::vector<Mcd> result;
    std::set<std::string> seen;
    // Only candidate views (ascending original ids); a skipped view has no
    // subgoal sharing any query (predicate, arity), so every one of its
    // seed buckets below would have been empty — no governed work changes.
    for (size_t ci = 0; ci < candidates_.size() && !aborted_; ++ci) {
      const size_t vi = candidates_[ci];
      const View& view = views_[vi];
      // One (predicate, arity) index per view, shared by every seed and
      // every Grow branch. Constants are NOT filtered on: MiniCon lets a
      // query constant select on a view variable (AttachConstant), so only
      // the predicate/arity shape is sound to prefilter here.
      const AtomIndex view_body_index(view.body());
      for (size_t seed = 0; seed < query_.num_subgoals() && !aborted_;
           ++seed) {
        const Atom& g = query_.subgoal(seed);
        const auto [b, e] = view_body_index.Bucket(
            g.predicate(), static_cast<uint32_t>(g.arity()));
        // No subgoal of this view shares the seed's shape: no MCD of this
        // (view, seed) pair exists, skip before building any state.
        if (b == e) continue;
        McdState state{ViewVarClasses(view), {}, 0, {seed}};
        Grow(vi, view_body_index, std::move(state), &result, &seen);
      }
    }
    *aborted |= aborted_;
    return result;
  }

 private:
  // Processes the agenda depth-first, branching over target atoms.
  void Grow(size_t view_index, const AtomIndex& view_body_index,
            McdState state, std::vector<Mcd>* out,
            std::set<std::string>* seen) {
    // The builder runs serially, so this checkpoint latches a work budget
    // deterministically; one work unit per search node.
    if (governor_ != nullptr) {
      governor_->ChargeWork(1);
      if (aborted_ || !governor_->CheckPoint("minicon.grow")) {
        aborted_ = true;
        return;
      }
    }
    // Pop the next uncovered agenda item.
    size_t subgoal = SIZE_MAX;
    while (!state.agenda.empty()) {
      const size_t g = state.agenda.back();
      state.agenda.pop_back();
      if (!(state.covered & (uint64_t{1} << g))) {
        subgoal = g;
        break;
      }
    }
    if (subgoal == SIZE_MAX) {
      Finalize(view_index, state, out, seen);
      return;
    }
    const Atom& g = query_.subgoal(subgoal);
    // Bucket lookup replaces the full body scan; original body order is
    // preserved inside the bucket, so branches are explored as before.
    const auto [b, e] = view_body_index.Bucket(
        g.predicate(), static_cast<uint32_t>(g.arity()));
    for (uint32_t k = b; k < e; ++k) {
      const Atom& target = *view_body_index.entries()[k].atom;
      McdState branch = state;  // Copy-per-branch keeps backtracking simple.
      branch.covered |= uint64_t{1} << subgoal;
      if (MatchAtom(g, target, &branch)) {
        Grow(view_index, view_body_index, std::move(branch), out, seen);
      }
    }
  }

  bool MatchAtom(const Atom& g, const Atom& target, McdState* state) {
    for (size_t i = 0; i < g.arity(); ++i) {
      const Term qs = g.arg(i);
      const Term vt = target.arg(i);
      if (qs.is_constant()) {
        if (vt.is_constant()) {
          if (qs != vt) return false;
        } else if (!state->classes.AttachConstant(vt.symbol(), qs)) {
          return false;
        }
        continue;
      }
      auto it = state->phi.find(qs.symbol());
      if (it == state->phi.end()) {
        state->phi.emplace(qs.symbol(), vt);
        if (vt.is_variable() && state->classes.HasExistential(vt.symbol())) {
          // Property C2: an existential image pulls in every subgoal of qs.
          const uint64_t needed = subgoals_of_var_.at(qs.symbol());
          for (size_t j = 0; j < query_.num_subgoals(); ++j) {
            if (needed & (uint64_t{1} << j)) state->agenda.push_back(j);
          }
        }
        continue;
      }
      // qs already mapped: unify the old and new images.
      const Term prev = it->second;
      if (prev.is_constant() && vt.is_constant()) {
        if (prev != vt) return false;
      } else if (prev.is_constant()) {
        if (!state->classes.AttachConstant(vt.symbol(), prev)) return false;
      } else if (vt.is_constant()) {
        if (!state->classes.AttachConstant(prev.symbol(), vt)) return false;
      } else if (!state->classes.Union(prev.symbol(), vt.symbol())) {
        return false;
      }
    }
    return true;
  }

  void Finalize(size_t view_index, McdState& state, std::vector<Mcd>* out,
                std::set<std::string>* seen) {
    const View& view = views_[view_index];
    // Property C1: distinguished query variables must be retrievable.
    for (const auto& [qvar, image] : state.phi) {
      if (!query_.IsDistinguished(Term::Variable(qvar))) continue;
      if (image.is_constant()) continue;
      if (!state.classes.HasHeadVar(image.symbol()) &&
          !state.classes.ConstantOf(image.symbol()).is_valid()) {
        return;
      }
    }
    // Build the literal: one argument per view-head position.
    // Representative query term per class: smallest symbol for determinism.
    std::map<Symbol, Term> class_rep;  // class root -> query term
    for (const auto& [qvar, image] : state.phi) {
      if (!image.is_variable()) continue;
      const Symbol root = state.classes.Find(image.symbol());
      const Term qterm = Term::Variable(qvar);
      auto it = class_rep.find(root);
      if (it == class_rep.end() || qterm < it->second) {
        class_rep[root] = qterm;
      }
    }
    std::vector<Term> args;
    args.reserve(view.head().arity());
    for (Term hv : view.head().args()) {
      if (hv.is_constant()) {
        args.push_back(hv);
        continue;
      }
      const Symbol root = state.classes.Find(hv.symbol());
      const Term constant = state.classes.ConstantOf(hv.symbol());
      auto it = class_rep.find(root);
      if (it != class_rep.end()) {
        args.push_back(it->second);
      } else if (constant.is_valid()) {
        args.push_back(constant);
      } else {
        args.push_back(FreshVar("F"));
      }
    }
    Mcd mcd;
    mcd.view_index = view_index;
    mcd.covered_mask = state.covered;
    mcd.literal = Atom(view.head().predicate(), std::move(args));

    // Deduplicate by (view, mask, literal-with-normalized-fresh-vars).
    std::string key = std::to_string(view_index) + "|" +
                      std::to_string(state.covered) + "|";
    for (Term t : mcd.literal.args()) {
      // Fresh variables (names containing '$') normalize to "_".
      const std::string name = t.ToString();
      key += (t.is_variable() && name.find('$') != std::string::npos)
                 ? "_"
                 : name;
      key += ",";
    }
    if (seen->insert(key).second) out->push_back(std::move(mcd));
  }

  const ConjunctiveQuery& query_;
  const ViewSet& views_;
  const std::vector<size_t> candidates_;  // ascending original view ids
  std::unordered_map<Symbol, uint64_t> subgoals_of_var_;
  ResourceGovernor* const governor_ = ResourceGovernor::Current();
  bool aborted_ = false;
};

// Exact disjoint cover over MCD masks.
void CombineMcds(const ConjunctiveQuery& query, const std::vector<Mcd>& mcds,
                 size_t max_results, MiniConResult* result) {
  const size_t n = query.num_subgoals();
  const uint64_t universe = (n == 64) ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  std::set<std::string> seen;
  std::vector<size_t> chosen;
  ResourceGovernor* const governor = ResourceGovernor::Current();

  std::function<void(uint64_t)> dfs = [&](uint64_t covered) {
    if (result->aborted) return;
    if (governor != nullptr) {
      governor->ChargeWork(1);
      if (!governor->CheckPoint("minicon.combine")) {
        result->aborted = true;
        return;
      }
    }
    if (result->contained_rewritings.size() >= max_results) {
      result->truncated = true;
      return;
    }
    if (covered == universe) {
      ++result->combinations_tested;
      std::vector<Atom> body;
      body.reserve(chosen.size());
      for (size_t i : chosen) body.push_back(mcds[i].literal);
      std::vector<std::string> parts;
      for (const Atom& a : body) parts.push_back(a.ToString());
      std::sort(parts.begin(), parts.end());
      std::string key;
      for (const std::string& p : parts) key += p + ";";
      if (seen.insert(key).second) {
        result->contained_rewritings.emplace_back(query.head(),
                                                  std::move(body));
      }
      return;
    }
    const uint64_t uncovered = universe & ~covered;
    const uint64_t lowest = uncovered & (~uncovered + 1);
    for (size_t i = 0; i < mcds.size(); ++i) {
      if ((mcds[i].covered_mask & lowest) == 0) continue;
      if ((mcds[i].covered_mask & covered) != 0) continue;  // Must tile.
      chosen.push_back(i);
      dfs(covered | mcds[i].covered_mask);
      chosen.pop_back();
    }
  };
  dfs(0);
}

}  // namespace

MiniConResult MiniCon(const ConjunctiveQuery& query, const ViewSet& views,
                      size_t max_results, const CandidateFilterOptions& filter) {
  VBR_CHECK_MSG(query.IsSafe(), "MiniCon requires a safe query");
  VBR_CHECK_MSG(!query.HasBuiltins(),
                "MiniCon requires comparison-free queries");
  MiniConResult result;
  bool minimize_complete = true;
  result.minimized_query = Minimize(query, &minimize_complete);
  // An exhausted minimization leaves a non-minimal (but equivalent) query;
  // MCDs over it are still individually valid, but the run must report
  // itself as incomplete rather than pretend the enumeration was exhaustive.
  if (!minimize_complete) result.aborted = true;
  if (result.minimized_query.num_subgoals() > 64) {
    // An aborted minimization can leave more than 64 subgoals on a query
    // whose true minimization fits; report an aborted (empty) run rather
    // than crashing on a budget artifact.
    ResourceGovernor* const governor = ResourceGovernor::Current();
    if (governor != nullptr && governor->exhausted()) {
      result.aborted = true;
      return result;
    }
    VBR_CHECK_MSG(false, "queries are limited to 64 subgoals");
  }

  McdBuilder builder(
      result.minimized_query, views,
      SelectCandidates(views, result.minimized_query, CandidateMode::kAnyOverlap,
                       filter));
  result.mcds = builder.BuildAll(&result.aborted);
  CombineMcds(result.minimized_query, result.mcds, max_results, &result);

  ResourceGovernor* const governor = ResourceGovernor::Current();
  for (const ConjunctiveQuery& p : result.contained_rewritings) {
    if (governor != nullptr && !governor->CheckPoint("minicon.verify")) {
      result.aborted = true;
      break;
    }
    // The equivalence filter only admits positive evidence: a check aborted
    // by the budget reads as non-equivalent and the candidate is skipped.
    if (IsEquivalentRewriting(p, result.minimized_query, views)) {
      result.equivalent_rewritings.push_back(p);
    }
  }
  return result;
}

UnionQuery MaximallyContainedRewriting(const MiniConResult& result) {
  VBR_CHECK_MSG(!result.contained_rewritings.empty(),
                "MiniCon found no contained rewriting");
  return UnionQuery(result.contained_rewritings);
}

}  // namespace vbr
