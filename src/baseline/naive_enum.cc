#include "baseline/naive_enum.h"

#include "common/check.h"
#include "cq/containment.h"
#include "rewrite/expansion.h"
#include "rewrite/view_tuple.h"

namespace vbr {

namespace {

// Recursively enumerates k-combinations of tuple indices.
class CombinationEnumerator {
 public:
  CombinationEnumerator(const ConjunctiveQuery& minimal_query,
                        const ViewSet& views,
                        const std::vector<ViewTuple>& tuples,
                        NaiveEnumerationResult* result, size_t max_results)
      : query_(minimal_query),
        views_(views),
        tuples_(tuples),
        result_(result),
        max_results_(max_results) {}

  void RunAtSize(size_t k) { Choose(0, k); }

 private:
  void Choose(size_t start, size_t remaining) {
    if (result_->rewritings.size() >= max_results_) return;
    if (remaining == 0) {
      Test();
      return;
    }
    if (tuples_.size() - start < remaining) return;
    for (size_t i = start; i < tuples_.size(); ++i) {
      chosen_.push_back(i);
      Choose(i + 1, remaining - 1);
      chosen_.pop_back();
    }
  }

  void Test() {
    ++result_->combinations_tested;
    std::vector<Atom> body;
    body.reserve(chosen_.size());
    for (size_t i : chosen_) body.push_back(tuples_[i].atom);
    ConjunctiveQuery candidate(query_.head(), std::move(body));
    if (!candidate.IsSafe()) return;
    // View tuples guarantee a containment mapping from the expansion into
    // the query; only the other direction needs testing.
    const Expansion exp = ExpandRewriting(candidate, views_);
    if (FindContainmentMapping(query_, exp.query).has_value()) {
      result_->rewritings.push_back(std::move(candidate));
    }
  }

  const ConjunctiveQuery& query_;
  const ViewSet& views_;
  const std::vector<ViewTuple>& tuples_;
  NaiveEnumerationResult* result_;
  const size_t max_results_;
  std::vector<size_t> chosen_;
};

}  // namespace

NaiveEnumerationResult NaiveEnumerateGmrs(const ConjunctiveQuery& query,
                                          const ViewSet& views,
                                          size_t max_results) {
  VBR_CHECK_MSG(query.IsSafe(), "naive enumeration requires a safe query");
  NaiveEnumerationResult result;
  const ConjunctiveQuery minimal = Minimize(query);
  const std::vector<ViewTuple> tuples = ComputeViewTuples(minimal, views);
  CombinationEnumerator enumerator(minimal, views, tuples, &result,
                                   max_results);
  for (size_t k = 1; k <= minimal.num_subgoals(); ++k) {
    enumerator.RunAtSize(k);
    if (!result.rewritings.empty()) {
      result.has_rewriting = true;
      result.min_size = k;
      break;
    }
  }
  return result;
}

}  // namespace vbr
