#include "baseline/bucket.h"

#include <algorithm>
#include <set>
#include <string>
#include <unordered_set>

#include "common/check.h"
#include "cq/containment.h"
#include "cq/homomorphism.h"
#include "rewrite/expansion.h"
#include "rewrite/view_tuple.h"

namespace vbr {

namespace {

// Local admission test: can `subgoal` map into the expansion of `tuple`
// with distinguished query variables landing on tuple arguments? This is
// the bucket algorithm's per-subgoal filter — necessary, not sufficient.
bool TupleCanCoverSubgoal(const Atom& subgoal, const Atom& tuple_atom,
                          const AtomIndex& expansion_index,
                          const ConjunctiveQuery& query) {
  // (predicate, arity) bucket lookup; constants are NOT prefiltered — the
  // bucket algorithm lets a query constant select on a view variable, so
  // only the shape is sound to filter on here.
  const auto [b, e] = expansion_index.Bucket(
      subgoal.predicate(), static_cast<uint32_t>(subgoal.arity()));
  for (uint32_t k = b; k < e; ++k) {
    const Atom& target = *expansion_index.entries()[k].atom;
    bool ok = true;
    Substitution partial;
    for (size_t i = 0; i < subgoal.arity() && ok; ++i) {
      const Term s = subgoal.arg(i);
      const Term t = target.arg(i);
      if (s.is_constant()) {
        ok = (s == t) || t.is_variable();
        continue;
      }
      if (!partial.Bind(s, t)) {
        ok = false;
        continue;
      }
      if (query.IsDistinguished(s)) {
        // A distinguished variable must be retrievable from the tuple.
        ok = !t.is_variable() || tuple_atom.Mentions(t);
      }
    }
    if (ok) return true;
  }
  return false;
}

std::string CanonicalBodyKey(const std::vector<Atom>& body) {
  std::vector<std::string> parts;
  parts.reserve(body.size());
  for (const Atom& a : body) parts.push_back(a.ToString());
  std::sort(parts.begin(), parts.end());
  std::string key;
  for (const std::string& p : parts) key += p + ";";
  return key;
}

}  // namespace

BucketResult BucketAlgorithm(const ConjunctiveQuery& query,
                             const ViewSet& views, size_t max_results,
                             size_t max_combinations,
                             const CandidateFilterOptions& filter) {
  VBR_CHECK_MSG(query.IsSafe(), "bucket algorithm requires a safe query");
  BucketResult result;
  const ConjunctiveQuery minimal = Minimize(query);

  // Candidate selection (kCoverAll): a view whose summary fails the test
  // produces zero view tuples, so running the tuple pass on the candidate
  // subset yields the same tuples in the same (catalog) order.
  const std::vector<size_t> cands =
      SelectCandidates(views, minimal, CandidateMode::kCoverAll, filter);
  ViewSet cviews;
  cviews.reserve(cands.size());
  for (size_t i : cands) cviews.push_back(views[i]);
  const std::vector<ViewTuple> tuples = ComputeViewTuples(minimal, cviews);

  // Pre-expand and index each tuple once; every query subgoal probes the
  // same expansion, so the (predicate, arity) buckets amortize across the
  // whole bucket-filling pass.
  std::vector<std::vector<Atom>> expansions;
  expansions.reserve(tuples.size());
  for (const ViewTuple& t : tuples) {
    expansions.push_back(
        ExpandViewAtom(t.atom, cviews[t.view_index]));
  }
  std::vector<AtomIndex> expansion_indexes;
  expansion_indexes.reserve(expansions.size());
  for (const std::vector<Atom>& exp : expansions) {
    expansion_indexes.emplace_back(exp);
  }

  result.buckets.resize(minimal.num_subgoals());
  for (size_t i = 0; i < minimal.num_subgoals(); ++i) {
    for (size_t j = 0; j < tuples.size(); ++j) {
      if (TupleCanCoverSubgoal(minimal.subgoal(i), tuples[j].atom,
                               expansion_indexes[j], minimal)) {
        result.buckets[i].push_back(tuples[j].atom);
      }
    }
    if (result.buckets[i].empty()) return result;  // No rewriting possible.
  }

  // Cartesian product of buckets.
  std::set<std::string> seen;
  std::vector<size_t> choice(minimal.num_subgoals(), 0);
  while (true) {
    if (result.combinations_tested >= max_combinations ||
        result.rewritings.size() >= max_results) {
      result.truncated = true;
      break;
    }
    ++result.combinations_tested;
    // Build the candidate body, deduplicating repeated atoms.
    std::vector<Atom> body;
    std::unordered_set<Atom, AtomHash> atom_set;
    for (size_t i = 0; i < choice.size(); ++i) {
      const Atom& atom = result.buckets[i][choice[i]];
      if (atom_set.insert(atom).second) body.push_back(atom);
    }
    const std::string key = CanonicalBodyKey(body);
    if (seen.insert(key).second) {
      ConjunctiveQuery candidate(minimal.head(), body);
      if (candidate.IsSafe()) {
        const Expansion exp = ExpandRewriting(candidate, views);
        if (FindContainmentMapping(minimal, exp.query).has_value()) {
          result.rewritings.push_back(std::move(candidate));
        }
      }
    }
    // Advance the odometer.
    size_t pos = 0;
    while (pos < choice.size()) {
      if (++choice[pos] < result.buckets[pos].size()) break;
      choice[pos] = 0;
      ++pos;
    }
    if (pos == choice.size()) break;
  }
  return result;
}

}  // namespace vbr
