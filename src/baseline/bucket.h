#ifndef VBR_BASELINE_BUCKET_H_
#define VBR_BASELINE_BUCKET_H_

#include <cstddef>
#include <vector>

#include "cq/atom.h"
#include "cq/query.h"
#include "rewrite/view_index.h"

namespace vbr {

// The Bucket algorithm (Levy et al.), adapted to the closed-world setting by
// drawing candidate literals from the view tuples T(Q, V): for every query
// subgoal, collect the view tuples that can cover it (a cheap local test),
// then form the cartesian product of the buckets and keep the combinations
// whose expansion is equivalent to the query. The cartesian product is the
// algorithm's well-known weakness — the benchmarks quantify it against
// CoreCover.

struct BucketResult {
  // buckets[i] holds the candidate view-tuple atoms for query subgoal i (of
  // the minimized query).
  std::vector<std::vector<Atom>> buckets;
  // Equivalent rewritings found (deduplicated by atom set).
  std::vector<ConjunctiveQuery> rewritings;
  // Combinations drawn from the cartesian product and tested.
  size_t combinations_tested = 0;
  bool truncated = false;
};

// `filter` selects candidate views before the view-tuple pass (kCoverAll
// mode — excluded views produce no view tuples, so the buckets and the
// rewritings are byte-identical with the filter on or off).
BucketResult BucketAlgorithm(const ConjunctiveQuery& query,
                             const ViewSet& views, size_t max_results = 1024,
                             size_t max_combinations = 1u << 20,
                             const CandidateFilterOptions& filter = {});

}  // namespace vbr

#endif  // VBR_BASELINE_BUCKET_H_
