#ifndef VBR_BASELINE_NAIVE_ENUM_H_
#define VBR_BASELINE_NAIVE_ENUM_H_

#include <cstddef>
#include <vector>

#include "cq/query.h"

namespace vbr {

// The naive algorithm Theorem 3.1 suggests: enumerate combinations of view
// tuples by increasing cardinality (1, 2, ..., n where n is the number of
// query subgoals) and test each combination for being an equivalent
// rewriting with a containment-mapping check. Sound and complete for GMRs,
// but exponential in the number of view tuples — the baseline CoreCover is
// measured against.

struct NaiveEnumerationResult {
  bool has_rewriting = false;
  size_t min_size = 0;
  // All globally-minimal rewritings found (deduplicated by tuple set).
  std::vector<ConjunctiveQuery> rewritings;
  // Number of candidate combinations subjected to the containment test.
  size_t combinations_tested = 0;
};

NaiveEnumerationResult NaiveEnumerateGmrs(const ConjunctiveQuery& query,
                                          const ViewSet& views,
                                          size_t max_results = 1024);

}  // namespace vbr

#endif  // VBR_BASELINE_NAIVE_ENUM_H_
