#ifndef VBR_ENGINE_ACYCLIC_H_
#define VBR_ENGINE_ACYCLIC_H_

#include <optional>
#include <vector>

#include "cq/query.h"
#include "engine/database.h"

namespace vbr {

// Acyclic-query machinery (GYO ear removal + Yannakakis semijoin
// reduction). The paper's experimental shapes — stars and chains — are
// acyclic, where full semijoin reduction removes every dangling tuple
// before the join, so intermediate results never exceed the output times
// the per-node sizes. This gives the engine a second, structurally
// different evaluation path; tests cross-validate it against the
// backtracking evaluator, and a benchmark shows the reduction winning on
// skewed chains with many dangling tuples.

// One node of a join tree over a query's body atoms.
struct JoinTreeNode {
  size_t atom_index = 0;
  // Index into the tree vector of the parent node, or -1 for the root.
  int parent = -1;
};

// Builds a join tree via GYO ear removal. Returns nullopt iff the atom set
// is cyclic (e.g., a triangle). Builtin atoms are not allowed
// (VBR_CHECKed). The returned nodes are ordered so that every node appears
// AFTER its parent (root first), which makes top-down/bottom-up sweeps
// simple array scans.
std::optional<std::vector<JoinTreeNode>> BuildJoinTree(
    const std::vector<Atom>& atoms);

// True iff the query's body hypergraph is acyclic.
bool IsAcyclicQuery(const ConjunctiveQuery& q);

// Per-atom relations after (a) applying constant selections and intra-atom
// repeated-variable filters and (b) a full Yannakakis reduction (leaf-to-
// root then root-to-leaf semijoins along `tree`). After reduction every
// remaining tuple participates in at least one full join result (global
// consistency). result[i] corresponds to atoms[i] and keeps the atom's
// column layout.
std::vector<Relation> SemiJoinReduce(const std::vector<Atom>& atoms,
                                     const Database& db,
                                     const std::vector<JoinTreeNode>& tree);

// Evaluates an acyclic conjunctive query by reduce-then-join. Exactly
// equivalent to EvaluateQuery (set semantics); CHECK-fails on cyclic
// queries — call IsAcyclicQuery first when unsure.
Relation EvaluateAcyclicQuery(const ConjunctiveQuery& q, const Database& db);

}  // namespace vbr

#endif  // VBR_ENGINE_ACYCLIC_H_
