#ifndef VBR_ENGINE_MATERIALIZE_H_
#define VBR_ENGINE_MATERIALIZE_H_

#include "cq/query.h"
#include "engine/database.h"

namespace vbr {

// Closed-world view materialization: evaluates each view definition over the
// base database and stores its answer under the view's head predicate.
// This is exactly the paper's setting — view relations are computed from the
// base relations, never independently populated.
Database MaterializeViews(const ViewSet& views, const Database& base);

// Materializes a single view into `out` (which may already hold other
// views). CHECK-fails if a relation for the view's head predicate already
// exists with different arity.
void MaterializeView(const View& view, const Database& base, Database* out);

}  // namespace vbr

#endif  // VBR_ENGINE_MATERIALIZE_H_
