#include "engine/acyclic.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "engine/evaluator.h"
#include "engine/value.h"

namespace vbr {

namespace {

using VarSet = std::unordered_set<Symbol>;

VarSet VarsOf(const Atom& atom) {
  VarSet vars;
  for (Term t : atom.args()) {
    if (t.is_variable()) vars.insert(t.symbol());
  }
  return vars;
}

// Applies constant selections and intra-atom repeated-variable filters,
// producing the node relation for `atom`.
Relation NodeRelation(const Atom& atom, const Database& db) {
  Relation result(atom.arity());
  const Relation* rel = db.Find(atom.predicate());
  if (rel == nullptr) return result;
  VBR_CHECK_MSG(rel->arity() == atom.arity(),
                "relation arity mismatches atom");
  std::unordered_map<Symbol, size_t> first_pos;
  for (size_t r = 0; r < rel->size(); ++r) {
    auto row = rel->row(r);
    bool ok = true;
    first_pos.clear();
    for (size_t p = 0; p < atom.arity() && ok; ++p) {
      const Term t = atom.arg(p);
      if (t.is_constant()) {
        ok = row[p] == EncodeConstant(t);
      } else {
        auto [it, inserted] = first_pos.emplace(t.symbol(), p);
        if (!inserted) ok = row[p] == row[it->second];
      }
    }
    if (ok) result.Insert(row);
  }
  return result;
}

// Positions of the variables `shared` in `atom` (first occurrence each).
std::vector<size_t> PositionsOf(const Atom& atom,
                                const std::vector<Symbol>& shared) {
  std::vector<size_t> positions;
  for (Symbol v : shared) {
    for (size_t p = 0; p < atom.arity(); ++p) {
      if (atom.arg(p).is_variable() && atom.arg(p).symbol() == v) {
        positions.push_back(p);
        break;
      }
    }
  }
  VBR_CHECK(positions.size() == shared.size());
  return positions;
}

// left ⋉ right on their shared variables (in place on `left`).
void SemiJoinInto(Relation* left, const Atom& left_atom,
                  const Relation& right, const Atom& right_atom) {
  // Shared variables, deterministic order.
  std::vector<Symbol> shared;
  const VarSet right_vars = VarsOf(right_atom);
  for (Term t : left_atom.args()) {
    if (t.is_variable() && right_vars.count(t.symbol()) &&
        std::find(shared.begin(), shared.end(), t.symbol()) == shared.end()) {
      shared.push_back(t.symbol());
    }
  }
  if (shared.empty()) {
    // Disconnected: the semijoin keeps everything iff the partner is
    // nonempty, nothing otherwise.
    if (right.empty()) *left = Relation(left->arity());
    return;
  }
  const std::vector<size_t> left_pos = PositionsOf(left_atom, shared);
  const std::vector<size_t> right_pos = PositionsOf(right_atom, shared);

  // Key set from the right side.
  Relation keys(shared.size());
  std::vector<Value> key(shared.size());
  for (size_t r = 0; r < right.size(); ++r) {
    auto row = right.row(r);
    for (size_t k = 0; k < right_pos.size(); ++k) key[k] = row[right_pos[k]];
    keys.Insert(key);
  }
  Relation filtered(left->arity());
  for (size_t r = 0; r < left->size(); ++r) {
    auto row = left->row(r);
    for (size_t k = 0; k < left_pos.size(); ++k) key[k] = row[left_pos[k]];
    if (keys.Contains(key)) filtered.Insert(row);
  }
  *left = std::move(filtered);
}

// Stable scratch predicate for atom slot `i` (interned once per process).
Symbol ScratchPredicate(size_t i) {
  static std::vector<Symbol>* cache = new std::vector<Symbol>;
  while (cache->size() <= i) {
    cache->push_back(SymbolTable::Global().Fresh(
        "acyclic_node" + std::to_string(cache->size())));
  }
  return (*cache)[i];
}

}  // namespace

std::optional<std::vector<JoinTreeNode>> BuildJoinTree(
    const std::vector<Atom>& atoms) {
  for (const Atom& a : atoms) {
    VBR_CHECK_MSG(!a.is_builtin(), "join trees cover relational atoms only");
  }
  const size_t n = atoms.size();
  if (n == 0) return std::vector<JoinTreeNode>{};

  std::vector<VarSet> vars;
  vars.reserve(n);
  for (const Atom& a : atoms) vars.push_back(VarsOf(a));

  std::vector<bool> active(n, true);
  // (removed atom, parent atom) in removal order.
  std::vector<std::pair<size_t, size_t>> removals;
  size_t num_active = n;
  bool progress = true;
  while (num_active > 1 && progress) {
    progress = false;
    for (size_t i = 0; i < n && num_active > 1; ++i) {
      if (!active[i]) continue;
      // Variables of i shared with some other active atom.
      VarSet shared;
      for (Symbol v : vars[i]) {
        for (size_t k = 0; k < n; ++k) {
          if (k != i && active[k] && vars[k].count(v)) {
            shared.insert(v);
            break;
          }
        }
      }
      // An ear needs a witness containing all its shared variables.
      for (size_t j = 0; j < n; ++j) {
        if (j == i || !active[j]) continue;
        bool contains = true;
        for (Symbol v : shared) {
          if (!vars[j].count(v)) {
            contains = false;
            break;
          }
        }
        if (contains) {
          removals.emplace_back(i, j);
          active[i] = false;
          --num_active;
          progress = true;
          break;
        }
      }
    }
  }
  if (num_active > 1) return std::nullopt;  // Cyclic.

  // Root = the surviving atom; order nodes root-first, parents before
  // children (reverse removal order has that property: each removed atom's
  // parent is removed later or survives).
  size_t root = 0;
  for (size_t i = 0; i < n; ++i) {
    if (active[i]) root = i;
  }
  std::vector<JoinTreeNode> tree;
  tree.reserve(n);
  std::unordered_map<size_t, int> position;  // atom index -> tree slot
  tree.push_back({root, -1});
  position.emplace(root, 0);
  for (auto it = removals.rbegin(); it != removals.rend(); ++it) {
    const auto [child, parent] = *it;
    auto pit = position.find(parent);
    VBR_CHECK(pit != position.end());
    position.emplace(child, static_cast<int>(tree.size()));
    tree.push_back({child, pit->second});
  }
  return tree;
}

bool IsAcyclicQuery(const ConjunctiveQuery& q) {
  return BuildJoinTree(q.body()).has_value();
}

std::vector<Relation> SemiJoinReduce(const std::vector<Atom>& atoms,
                                     const Database& db,
                                     const std::vector<JoinTreeNode>& tree) {
  VBR_CHECK(tree.size() == atoms.size());
  std::vector<Relation> reduced;
  reduced.reserve(atoms.size());
  for (const Atom& a : atoms) reduced.push_back(NodeRelation(a, db));

  // Leaf-to-root: parent ⋉ child (children appear after parents in `tree`).
  for (size_t t = tree.size(); t-- > 1;) {
    const size_t child = tree[t].atom_index;
    const size_t parent = tree[tree[t].parent].atom_index;
    SemiJoinInto(&reduced[parent], atoms[parent], reduced[child],
                 atoms[child]);
  }
  // Root-to-leaf: child ⋉ parent.
  for (size_t t = 1; t < tree.size(); ++t) {
    const size_t child = tree[t].atom_index;
    const size_t parent = tree[tree[t].parent].atom_index;
    SemiJoinInto(&reduced[child], atoms[child], reduced[parent],
                 atoms[parent]);
  }
  return reduced;
}

Relation EvaluateAcyclicQuery(const ConjunctiveQuery& q, const Database& db) {
  VBR_CHECK_MSG(q.IsSafe(), "cannot evaluate an unsafe query");
  auto tree = BuildJoinTree(q.body());
  VBR_CHECK_MSG(tree.has_value(),
                "EvaluateAcyclicQuery requires an acyclic query");
  const std::vector<Relation> reduced = SemiJoinReduce(q.body(), db, *tree);

  // Join the reduced node relations with the general evaluator, giving
  // each atom slot its own scratch predicate.
  Database scratch;
  std::vector<Atom> body;
  body.reserve(q.num_subgoals());
  for (size_t i = 0; i < q.num_subgoals(); ++i) {
    const Symbol pred = ScratchPredicate(i);
    Relation& rel = scratch.GetOrCreate(pred, reduced[i].arity());
    for (size_t r = 0; r < reduced[i].size(); ++r) {
      rel.Insert(reduced[i].row(r));
    }
    body.emplace_back(pred, q.subgoal(i).args());
  }
  return EvaluateQuery(q.WithBody(std::move(body)), scratch);
}

}  // namespace vbr
