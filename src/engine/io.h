#ifndef VBR_ENGINE_IO_H_
#define VBR_ENGINE_IO_H_

#include <optional>
#include <string>
#include <string_view>

#include "engine/database.h"

namespace vbr {

// Plain-text database exchange format: one ground fact per line,
//
//     car(toyota, anderson).
//     loc(anderson, sf).     % comments run to end of line
//     part(store1, toyota, sf)
//
// Arguments are symbolic constants (lower-case identifiers) or integer
// literals; they encode via EncodeConstant, so data loaded here joins
// correctly with constants written in queries. The trailing period is
// optional. `%` and `#` start comments.

// Parses `text` into a Database. On failure returns nullopt and, if `error`
// is non-null, stores a message with line information. Facts for one
// predicate must agree on arity.
std::optional<Database> ParseDatabase(std::string_view text,
                                      std::string* error = nullptr);

// Reads a database from a file via ParseDatabase.
std::optional<Database> LoadDatabaseFile(const std::string& path,
                                         std::string* error = nullptr);

// Serializes `db` in the same format (sorted predicates, sorted rows) so
// dumps are diff-stable.
std::string DatabaseToText(const Database& db);

}  // namespace vbr

#endif  // VBR_ENGINE_IO_H_
