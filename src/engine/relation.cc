#include "engine/relation.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace vbr {

namespace {

uint64_t MixValue(uint64_t h, Value v) {
  h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

Relation::Relation(size_t arity) : arity_(arity) {}

uint64_t Relation::HashRow(std::span<const Value> row) {
  uint64_t h = 0x12345678abcdef01ULL;
  for (Value v : row) h = MixValue(h, v);
  return h;
}

bool Relation::Insert(std::span<const Value> row) {
  VBR_CHECK(row.size() == arity_);
  const uint64_t h = HashRow(row);
  auto& bucket = index_[h];
  for (size_t idx : bucket) {
    if (std::equal(row.begin(), row.end(), data_.begin() + idx * arity_)) {
      return false;
    }
  }
  bucket.push_back(num_rows_);
  data_.insert(data_.end(), row.begin(), row.end());
  ++num_rows_;
  return true;
}

bool Relation::Contains(std::span<const Value> row) const {
  VBR_CHECK(row.size() == arity_);
  auto it = index_.find(HashRow(row));
  if (it == index_.end()) return false;
  for (size_t idx : it->second) {
    if (std::equal(row.begin(), row.end(), data_.begin() + idx * arity_)) {
      return true;
    }
  }
  return false;
}

std::span<const Value> Relation::row(size_t i) const {
  VBR_DCHECK(i < num_rows_);
  return std::span<const Value>(data_.data() + i * arity_, arity_);
}

std::vector<std::vector<Value>> Relation::SortedRows() const {
  std::vector<std::vector<Value>> rows;
  rows.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    auto r = row(i);
    rows.emplace_back(r.begin(), r.end());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool Relation::EqualsAsSet(const Relation& other) const {
  if (arity_ != other.arity_ || num_rows_ != other.num_rows_) return false;
  for (size_t i = 0; i < num_rows_; ++i) {
    if (!other.Contains(row(i))) return false;
  }
  return true;
}

std::string Relation::ToString(size_t max_rows) const {
  std::string s = "{";
  const auto rows = SortedRows();
  for (size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    if (i > 0) s += ", ";
    s += "(";
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (j > 0) s += ",";
      s += ValueToString(rows[i][j]);
    }
    s += ")";
  }
  if (rows.size() > max_rows) s += ", ...";
  s += "}";
  return s;
}

RelationIndex::RelationIndex(const Relation& rel,
                             std::vector<size_t> key_columns)
    : rel_(rel), key_columns_(std::move(key_columns)) {
  std::vector<Value> key(key_columns_.size());
  for (size_t i = 0; i < rel_.size(); ++i) {
    auto row = rel_.row(i);
    for (size_t k = 0; k < key_columns_.size(); ++k) {
      VBR_DCHECK(key_columns_[k] < rel_.arity());
      key[k] = row[key_columns_[k]];
    }
    uint64_t h = 0x9ddfea08eb382d69ULL;
    for (Value v : key) {
      h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    buckets_[h].push_back(i);
  }
}

const std::vector<size_t>& RelationIndex::EmptyBucket() {
  static const std::vector<size_t>* empty = new std::vector<size_t>;
  return *empty;
}

const std::vector<size_t>& RelationIndex::Probe(
    std::span<const Value> key) const {
  VBR_DCHECK(key.size() == key_columns_.size());
  uint64_t h = 0x9ddfea08eb382d69ULL;
  for (Value v : key) {
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  auto it = buckets_.find(h);
  return it == buckets_.end() ? EmptyBucket() : it->second;
}

}  // namespace vbr
