#ifndef VBR_ENGINE_VALUE_H_
#define VBR_ENGINE_VALUE_H_

#include <cstdint>
#include <string>

#include "common/check.h"
#include "cq/term.h"

namespace vbr {

// Data values stored in relations. Synthetic workloads use ordinary
// integers; symbolic constants from queries (e.g. `anderson`) are encoded as
// values below kSymbolicValueBase, derived from their interned Symbol, so
// the two ranges never collide (integer data must stay above the base, which
// leaves the full ±2^40 range for it). Numeric constant literals (e.g. `42`)
// encode as their integer value so builtin comparisons behave naturally.
using Value = int64_t;

inline constexpr Value kSymbolicValueBase = -(int64_t{1} << 40);

// Encodes a constant term as a Value. Numeric spellings become their integer
// value; other names map to a unique value below kSymbolicValueBase.
inline Value EncodeConstant(Term constant) {
  VBR_DCHECK(constant.is_constant());
  const std::string& name = SymbolTable::Global().NameOf(constant.symbol());
  size_t i = (name[0] == '-') ? 1 : 0;
  bool numeric = i < name.size();
  for (size_t j = i; j < name.size(); ++j) {
    if (name[j] < '0' || name[j] > '9') {
      numeric = false;
      break;
    }
  }
  if (numeric) {
    const Value v = std::stoll(name);
    VBR_CHECK_MSG(v > kSymbolicValueBase, "numeric constant out of range");
    return v;
  }
  return kSymbolicValueBase - static_cast<Value>(constant.symbol());
}

// Decodes a Value back to a printable string: symbolic constants print their
// name, everything else prints as an integer.
inline std::string ValueToString(Value v) {
  if (v <= kSymbolicValueBase) {
    const Symbol sym = static_cast<Symbol>(kSymbolicValueBase - v);
    return SymbolTable::Global().NameOf(sym);
  }
  return std::to_string(v);
}

}  // namespace vbr

#endif  // VBR_ENGINE_VALUE_H_
