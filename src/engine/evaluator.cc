#include "engine/evaluator.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/budget.h"
#include "common/check.h"
#include "engine/value.h"

namespace vbr {

namespace {

// One relational subgoal prepared for matching.
struct PreparedAtom {
  const Atom* atom = nullptr;
  const Relation* relation = nullptr;  // nullptr => empty result.
};

// Comparison subgoal prepared as a filter.
struct PreparedFilter {
  enum class Op { kLt, kLe, kGt, kGe, kNe };
  Op op;
  // Each side is either a constant value or a variable slot.
  bool lhs_is_slot = false;
  bool rhs_is_slot = false;
  Value lhs_const = 0;
  Value rhs_const = 0;
  size_t lhs_slot = 0;
  size_t rhs_slot = 0;
};

PreparedFilter::Op ParseOp(const std::string& name) {
  if (name == "<") return PreparedFilter::Op::kLt;
  if (name == "<=") return PreparedFilter::Op::kLe;
  if (name == ">") return PreparedFilter::Op::kGt;
  if (name == ">=") return PreparedFilter::Op::kGe;
  VBR_CHECK_MSG(name == "!=", "unknown builtin predicate");
  return PreparedFilter::Op::kNe;
}

bool ApplyOp(PreparedFilter::Op op, Value a, Value b) {
  switch (op) {
    case PreparedFilter::Op::kLt:
      return a < b;
    case PreparedFilter::Op::kLe:
      return a <= b;
    case PreparedFilter::Op::kGt:
      return a > b;
    case PreparedFilter::Op::kGe:
      return a >= b;
    case PreparedFilter::Op::kNe:
      return a != b;
  }
  return false;
}

// Backtracking join over the relational atoms, with builtin filters applied
// as soon as their inputs are bound.
class JoinEvaluator {
 public:
  JoinEvaluator(const std::vector<Atom>& atoms, const Database& db)
      : db_(db) {
    // Assign a slot to each distinct variable across relational atoms.
    for (const Atom& a : atoms) {
      if (a.is_builtin()) continue;
      for (Term t : a.args()) {
        if (t.is_variable() && !slots_.count(t.symbol())) {
          const size_t slot = slots_.size();
          slots_.emplace(t.symbol(), slot);
          slot_vars_.push_back(t);
        }
      }
    }
    bound_.assign(slots_.size(), false);
    values_.assign(slots_.size(), 0);

    for (const Atom& a : atoms) {
      if (a.is_builtin()) {
        filters_.push_back(PrepareFilter(a));
      } else {
        PreparedAtom pa;
        pa.atom = &a;
        pa.relation = db.Find(a.predicate());
        relational_.push_back(pa);
      }
    }
    order_ = PlanOrder();
    // Schedule each filter at the earliest step where its slots are bound.
    filter_at_step_.assign(order_.size() + 1, {});
    for (size_t f = 0; f < filters_.size(); ++f) {
      filter_at_step_[EarliestStep(filters_[f])].push_back(f);
    }
  }

  const std::vector<Term>& columns() const { return slot_vars_; }

  // Runs the join; `emit` is called with the slot values for each result.
  void Run(const std::function<void(const std::vector<Value>&)>& emit) {
    // A subgoal over a missing/empty relation annihilates the result.
    for (const PreparedAtom& pa : relational_) {
      if (pa.relation == nullptr || pa.relation->empty()) return;
    }
    emit_ = &emit;
    if (!ApplyFiltersAt(0)) return;
    Recurse(0);
  }

 private:
  PreparedFilter PrepareFilter(const Atom& a) {
    VBR_CHECK(a.arity() == 2);
    PreparedFilter f;
    f.op = ParseOp(a.predicate_name());
    const Term lhs = a.arg(0);
    const Term rhs = a.arg(1);
    if (lhs.is_variable()) {
      auto it = slots_.find(lhs.symbol());
      VBR_CHECK_MSG(it != slots_.end(),
                    "builtin variable not bound by any relational subgoal");
      f.lhs_is_slot = true;
      f.lhs_slot = it->second;
    } else {
      f.lhs_const = EncodeConstant(lhs);
    }
    if (rhs.is_variable()) {
      auto it = slots_.find(rhs.symbol());
      VBR_CHECK_MSG(it != slots_.end(),
                    "builtin variable not bound by any relational subgoal");
      f.rhs_is_slot = true;
      f.rhs_slot = it->second;
    } else {
      f.rhs_const = EncodeConstant(rhs);
    }
    return f;
  }

  // Greedy join order: repeatedly pick the unplaced atom maximizing
  // (number of bound/constant argument positions, then smallest relation).
  std::vector<size_t> PlanOrder() const {
    const size_t n = relational_.size();
    std::vector<size_t> order;
    order.reserve(n);
    std::vector<bool> placed(n, false);
    std::vector<bool> var_bound(slots_.size(), false);
    for (size_t step = 0; step < n; ++step) {
      size_t best = n;
      double best_score = -1e300;
      for (size_t i = 0; i < n; ++i) {
        if (placed[i]) continue;
        size_t bound_args = 0;
        for (Term t : relational_[i].atom->args()) {
          if (t.is_constant() ||
              (t.is_variable() && var_bound[slots_.at(t.symbol())])) {
            ++bound_args;
          }
        }
        const double rel_size =
            relational_[i].relation == nullptr
                ? 0.0
                : static_cast<double>(relational_[i].relation->size());
        const double score = 1e6 * static_cast<double>(bound_args) - rel_size;
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      placed[best] = true;
      order.push_back(best);
      for (Term t : relational_[best].atom->args()) {
        if (t.is_variable()) var_bound[slots_.at(t.symbol())] = true;
      }
    }
    return order;
  }

  // Earliest step index (0..order_.size()) at which all slots used by `f`
  // are bound; filters over constants only run at step 0.
  size_t EarliestStep(const PreparedFilter& f) const {
    std::vector<bool> var_bound(slots_.size(), false);
    size_t step = 0;
    auto ready = [&] {
      return (!f.lhs_is_slot || var_bound[f.lhs_slot]) &&
             (!f.rhs_is_slot || var_bound[f.rhs_slot]);
    };
    while (!ready()) {
      VBR_CHECK_MSG(step < order_.size(), "builtin never becomes bound");
      for (Term t : relational_[order_[step]].atom->args()) {
        if (t.is_variable()) var_bound[slots_.at(t.symbol())] = true;
      }
      ++step;
    }
    return step;
  }

  bool ApplyFiltersAt(size_t step) {
    for (size_t f : filter_at_step_[step]) {
      const PreparedFilter& pf = filters_[f];
      const Value a = pf.lhs_is_slot ? values_[pf.lhs_slot] : pf.lhs_const;
      const Value b = pf.rhs_is_slot ? values_[pf.rhs_slot] : pf.rhs_const;
      if (!ApplyOp(pf.op, a, b)) return false;
    }
    return true;
  }

  void Recurse(size_t step) {
    if (step == order_.size()) {
      // Every emitted row is tracked against the memory budget (results of
      // governed joins are materialized or counted by the callers); a blown
      // budget stops the enumeration, leaving a prefix of genuine rows.
      if (governor_ != nullptr) {
        ++emitted_;
        if (!governor_->ChargeMemory(values_.size() * sizeof(Value),
                                     "engine.join_rows") ||
            (emitted_ % 256 == 0 && !governor_->KeepGoing("engine.join_rows"))) {
          aborted_ = true;
          return;
        }
      }
      (*emit_)(values_);
      return;
    }
    if (aborted_) return;
    const PreparedAtom& pa = relational_[order_[step]];
    const Relation& rel = *pa.relation;
    // Determine bound positions for index probing.
    std::vector<size_t> key_cols;
    std::vector<Value> key;
    for (size_t i = 0; i < pa.atom->arity(); ++i) {
      const Term t = pa.atom->arg(i);
      if (t.is_constant()) {
        key_cols.push_back(i);
        key.push_back(EncodeConstant(t));
      } else if (bound_[slots_.at(t.symbol())]) {
        key_cols.push_back(i);
        key.push_back(values_[slots_.at(t.symbol())]);
      }
    }
    const RelationIndex& index = GetIndex(pa, key_cols);
    for (size_t row_idx : index.Probe(key)) {
      if (aborted_) return;
      auto row = rel.row(row_idx);
      std::vector<size_t> newly_bound;
      if (MatchRow(*pa.atom, row, &newly_bound) && ApplyFiltersAt(step + 1)) {
        Recurse(step + 1);
      }
      for (size_t slot : newly_bound) bound_[slot] = false;
    }
  }

  // Verifies `row` against the atom under current bindings (also guards
  // against hash collisions from the index probe) and binds new variables.
  bool MatchRow(const Atom& atom, std::span<const Value> row,
                std::vector<size_t>* newly_bound) {
    for (size_t i = 0; i < atom.arity(); ++i) {
      const Term t = atom.arg(i);
      if (t.is_constant()) {
        if (EncodeConstant(t) != row[i]) return false;
        continue;
      }
      const size_t slot = slots_.at(t.symbol());
      if (bound_[slot]) {
        if (values_[slot] != row[i]) return false;
        continue;
      }
      bound_[slot] = true;
      values_[slot] = row[i];
      newly_bound->push_back(slot);
    }
    return true;
  }

  const RelationIndex& GetIndex(const PreparedAtom& pa,
                                const std::vector<size_t>& key_cols) {
    const auto key = std::make_pair(pa.atom->predicate(), key_cols);
    auto it = indexes_.find(key);
    if (it == indexes_.end()) {
      it = indexes_
               .emplace(key, std::make_unique<RelationIndex>(*pa.relation,
                                                             key_cols))
               .first;
    }
    return *it->second;
  }

  struct IndexKeyHash {
    size_t operator()(const std::pair<Symbol, std::vector<size_t>>& k) const {
      size_t h = std::hash<int32_t>()(k.first);
      for (size_t c : k.second) h = h * 131 + c;
      return h;
    }
  };

  const Database& db_;
  std::unordered_map<Symbol, size_t> slots_;
  std::vector<Term> slot_vars_;
  std::vector<bool> bound_;
  std::vector<Value> values_;
  std::vector<PreparedAtom> relational_;
  std::vector<PreparedFilter> filters_;
  std::vector<size_t> order_;
  std::vector<std::vector<size_t>> filter_at_step_;
  std::unordered_map<std::pair<Symbol, std::vector<size_t>>,
                     std::unique_ptr<RelationIndex>, IndexKeyHash>
      indexes_;
  const std::function<void(const std::vector<Value>&)>* emit_ = nullptr;
  ResourceGovernor* const governor_ = ResourceGovernor::Current();
  uint64_t emitted_ = 0;
  bool aborted_ = false;
};

}  // namespace

Relation EvaluateQuery(const ConjunctiveQuery& q, const Database& db) {
  VBR_CHECK_MSG(q.IsSafe(), "cannot evaluate an unsafe query");
  JoinEvaluator eval(q.body(), db);
  // Slot of each head argument (or its constant encoding).
  struct HeadCol {
    bool is_slot;
    size_t slot;
    Value constant;
  };
  std::vector<HeadCol> head_cols;
  std::unordered_map<Symbol, size_t> var_slot;
  for (size_t i = 0; i < eval.columns().size(); ++i) {
    var_slot.emplace(eval.columns()[i].symbol(), i);
  }
  for (Term t : q.head().args()) {
    if (t.is_variable()) {
      head_cols.push_back({true, var_slot.at(t.symbol()), 0});
    } else {
      head_cols.push_back({false, 0, EncodeConstant(t)});
    }
  }
  Relation result(q.head().arity());
  std::vector<Value> out(head_cols.size());
  eval.Run([&](const std::vector<Value>& values) {
    for (size_t i = 0; i < head_cols.size(); ++i) {
      out[i] = head_cols[i].is_slot ? values[head_cols[i].slot]
                                    : head_cols[i].constant;
    }
    result.Insert(out);
  });
  return result;
}

Relation EvaluateJoin(const std::vector<Atom>& atoms, const Database& db,
                      std::vector<Term>* columns) {
  JoinEvaluator eval(atoms, db);
  // Emit in CollectVariables order, which may differ from slot order only
  // if builtin atoms mention variables first; slots are assigned from
  // relational atoms in order, so slot order == CollectVariables over
  // relational atoms.
  if (columns != nullptr) *columns = eval.columns();
  Relation result(eval.columns().size());
  eval.Run([&](const std::vector<Value>& values) { result.Insert(values); });
  return result;
}

size_t JoinSize(const std::vector<Atom>& atoms, const Database& db) {
  JoinEvaluator eval(atoms, db);
  size_t count = 0;
  eval.Run([&](const std::vector<Value>&) { ++count; });
  return count;
}

}  // namespace vbr
