#include "engine/materialize.h"

#include "common/check.h"
#include "engine/evaluator.h"

namespace vbr {

void MaterializeView(const View& view, const Database& base, Database* out) {
  VBR_CHECK_MSG(view.IsSafe(), "view definitions must be safe");
  Relation answer = EvaluateQuery(view, base);
  Relation& target =
      out->GetOrCreate(view.head().predicate(), view.head().arity());
  for (size_t i = 0; i < answer.size(); ++i) {
    target.Insert(answer.row(i));
  }
}

Database MaterializeViews(const ViewSet& views, const Database& base) {
  Database result;
  for (const View& v : views) {
    MaterializeView(v, base, &result);
  }
  return result;
}

}  // namespace vbr
