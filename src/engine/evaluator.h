#ifndef VBR_ENGINE_EVALUATOR_H_
#define VBR_ENGINE_EVALUATOR_H_

#include <vector>

#include "cq/query.h"
#include "engine/database.h"

namespace vbr {

// Bottom-up evaluation of conjunctive queries over a Database, by
// backtracking joins with hash indexes built on demand (equivalent to a
// left-deep index-nested-loop plan with a greedy bound-first join order).
// Set semantics throughout.
//
// Builtin comparison subgoals are supported as filters; every variable of a
// builtin must also appear in a relational subgoal (VBR_CHECKed).

// The answer to `q` on `db`: a relation of head arity. Head constants are
// emitted as encoded values.
Relation EvaluateQuery(const ConjunctiveQuery& q, const Database& db);

// The join of `atoms` with every distinct variable retained, i.e., the
// paper's intermediate relation IR over those subgoals (constants selected,
// repeated variables equated, nothing projected away). Column i of the
// result corresponds to `columns[i]`, which is CollectVariables(atoms)
// order. Pass the same atoms in any order: the result is order-independent.
Relation EvaluateJoin(const std::vector<Atom>& atoms, const Database& db,
                      std::vector<Term>* columns = nullptr);

// size of EvaluateJoin without materializing column metadata.
size_t JoinSize(const std::vector<Atom>& atoms, const Database& db);

}  // namespace vbr

#endif  // VBR_ENGINE_EVALUATOR_H_
