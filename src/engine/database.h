#ifndef VBR_ENGINE_DATABASE_H_
#define VBR_ENGINE_DATABASE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cq/atom.h"
#include "engine/relation.h"

namespace vbr {

// A database instance: a relation per predicate symbol.
class Database {
 public:
  Database() = default;

  // The relation for `predicate`, creating an empty one with `arity` if
  // absent. CHECK-fails if it exists with a different arity.
  Relation& GetOrCreate(Symbol predicate, size_t arity);

  // The relation for `predicate`, or nullptr if absent.
  const Relation* Find(Symbol predicate) const;
  Relation* FindMutable(Symbol predicate);

  // Inserts a ground fact. All arguments of `fact` must be constants; they
  // are encoded with EncodeConstant.
  void AddFact(const Atom& fact);

  // Inserts a row of raw values under `predicate` (interned globally).
  void AddRow(std::string_view predicate, std::initializer_list<Value> row);
  void AddRow(Symbol predicate, std::span<const Value> row);

  size_t NumRelations() const { return relations_.size(); }

  // Copies every relation of `other` into this database, overwriting any
  // relation stored under the same predicate (AddViews: the added views'
  // instances join the snapshot's copy of the existing ones).
  void MergeFrom(const Database& other);

  // Drops the relation stored under `predicate`; returns whether one
  // existed.
  bool Remove(Symbol predicate);

  // Total number of rows across relations.
  size_t TotalRows() const;

  // Predicate symbols, sorted by name, for deterministic printing.
  std::vector<Symbol> Predicates() const;

  std::string ToString() const;

 private:
  std::unordered_map<Symbol, Relation> relations_;
};

}  // namespace vbr

#endif  // VBR_ENGINE_DATABASE_H_
