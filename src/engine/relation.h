#ifndef VBR_ENGINE_RELATION_H_
#define VBR_ENGINE_RELATION_H_

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/value.h"

namespace vbr {

// A relation with set semantics: a deduplicated bag of fixed-arity rows
// stored in a flat array (row-major) with a hash index for membership
// tests. Insertion order is preserved for deterministic iteration.
class Relation {
 public:
  explicit Relation(size_t arity);

  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  // Inserts a row; returns false (and does nothing) if it is already
  // present. `row.size()` must equal arity().
  bool Insert(std::span<const Value> row);
  bool Insert(std::initializer_list<Value> row) {
    return Insert(std::span<const Value>(row.begin(), row.size()));
  }

  bool Contains(std::span<const Value> row) const;
  bool Contains(std::initializer_list<Value> row) const {
    return Contains(std::span<const Value>(row.begin(), row.size()));
  }

  // The i-th row (pointer to arity() consecutive values). Stable only until
  // the next Insert.
  std::span<const Value> row(size_t i) const;

  // Rows sorted lexicographically; used for deterministic printing and
  // comparisons.
  std::vector<std::vector<Value>> SortedRows() const;

  // Set equality (arity and rows).
  bool EqualsAsSet(const Relation& other) const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  static uint64_t HashRow(std::span<const Value> row);

  size_t arity_;
  size_t num_rows_ = 0;
  std::vector<Value> data_;  // num_rows_ * arity_ values.
  // Hash -> row indices with that hash (collisions resolved by comparison).
  std::unordered_map<uint64_t, std::vector<size_t>> index_;
};

// An index from a key (a subset of column positions) to the rows having
// each key, built on demand by the evaluator.
class RelationIndex {
 public:
  // `key_columns` must be distinct, valid positions of `rel`. The index
  // holds a reference to `rel`; do not mutate the relation while the index
  // is alive.
  RelationIndex(const Relation& rel, std::vector<size_t> key_columns);

  // Row indices whose key columns equal `key` (same order as key_columns).
  const std::vector<size_t>& Probe(std::span<const Value> key) const;

  const std::vector<size_t>& key_columns() const { return key_columns_; }

 private:
  static const std::vector<size_t>& EmptyBucket();

  const Relation& rel_;
  std::vector<size_t> key_columns_;
  std::unordered_map<uint64_t, std::vector<size_t>> buckets_;
};

}  // namespace vbr

#endif  // VBR_ENGINE_RELATION_H_
