#include "engine/io.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "engine/value.h"

namespace vbr {

namespace {

struct Cursor {
  std::string_view text;
  size_t pos = 0;
  size_t line = 1;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipSpaceAndComments() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '\n') {
        ++line;
        ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
      } else if (c == '%' || c == '#') {
        while (!AtEnd() && Peek() != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  bool Fail(std::string* error, const std::string& message) const {
    if (error != nullptr) {
      *error = "line " + std::to_string(line) + ": " + message;
    }
    return false;
  }

  // Reads an identifier or an integer literal.
  bool ReadToken(std::string* out, std::string* error) {
    SkipSpaceAndComments();
    if (AtEnd()) return Fail(error, "unexpected end of input");
    const size_t start = pos;
    char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_')) {
        ++pos;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      ++pos;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos;
      }
    } else {
      return Fail(error, std::string("unexpected character '") + c + "'");
    }
    *out = std::string(text.substr(start, pos - start));
    return true;
  }

  bool Expect(char c, std::string* error) {
    SkipSpaceAndComments();
    if (AtEnd() || Peek() != c) {
      return Fail(error, std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }
};

Value TokenToValue(const std::string& token) {
  const bool numeric =
      !token.empty() &&
      (std::isdigit(static_cast<unsigned char>(token[0])) ||
       (token[0] == '-' && token.size() > 1));
  if (numeric) return std::stoll(token);
  return EncodeConstant(Const(token));
}

}  // namespace

std::optional<Database> ParseDatabase(std::string_view text,
                                      std::string* error) {
  Database db;
  Cursor cursor{text};
  while (true) {
    cursor.SkipSpaceAndComments();
    if (cursor.AtEnd()) break;
    std::string predicate;
    if (!cursor.ReadToken(&predicate, error)) return std::nullopt;
    if (std::isdigit(static_cast<unsigned char>(predicate[0])) ||
        predicate[0] == '-') {
      cursor.Fail(error, "predicate names cannot be numbers");
      return std::nullopt;
    }
    if (!cursor.Expect('(', error)) return std::nullopt;
    std::vector<Value> row;
    cursor.SkipSpaceAndComments();
    if (!cursor.AtEnd() && cursor.Peek() != ')') {
      while (true) {
        std::string token;
        if (!cursor.ReadToken(&token, error)) return std::nullopt;
        row.push_back(TokenToValue(token));
        cursor.SkipSpaceAndComments();
        if (!cursor.AtEnd() && cursor.Peek() == ',') {
          ++cursor.pos;
          continue;
        }
        break;
      }
    }
    if (!cursor.Expect(')', error)) return std::nullopt;
    cursor.SkipSpaceAndComments();
    if (!cursor.AtEnd() && cursor.Peek() == '.') ++cursor.pos;

    const Symbol sym = SymbolTable::Global().Intern(predicate);
    const Relation* existing = db.Find(sym);
    if (existing != nullptr && existing->arity() != row.size()) {
      cursor.Fail(error, "fact arity mismatches earlier facts for '" +
                             predicate + "'");
      return std::nullopt;
    }
    db.AddRow(sym, row);
  }
  return db;
}

std::optional<Database> LoadDatabaseFile(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseDatabase(buffer.str(), error);
}

std::string DatabaseToText(const Database& db) {
  std::string out;
  for (Symbol predicate : db.Predicates()) {
    const Relation& rel = *db.Find(predicate);
    const std::string& name = SymbolTable::Global().NameOf(predicate);
    for (const auto& row : rel.SortedRows()) {
      out += name;
      out += "(";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += ", ";
        out += ValueToString(row[i]);
      }
      out += ").\n";
    }
  }
  return out;
}

}  // namespace vbr
