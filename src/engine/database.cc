#include "engine/database.h"

#include <algorithm>

#include "common/check.h"
#include "engine/value.h"

namespace vbr {

Relation& Database::GetOrCreate(Symbol predicate, size_t arity) {
  auto it = relations_.find(predicate);
  if (it == relations_.end()) {
    it = relations_.emplace(predicate, Relation(arity)).first;
  }
  VBR_CHECK_MSG(it->second.arity() == arity,
                "predicate re-declared with different arity");
  return it->second;
}

const Relation* Database::Find(Symbol predicate) const {
  auto it = relations_.find(predicate);
  return it == relations_.end() ? nullptr : &it->second;
}

Relation* Database::FindMutable(Symbol predicate) {
  auto it = relations_.find(predicate);
  return it == relations_.end() ? nullptr : &it->second;
}

void Database::AddFact(const Atom& fact) {
  std::vector<Value> row;
  row.reserve(fact.arity());
  for (Term t : fact.args()) {
    VBR_CHECK_MSG(t.is_constant(), "AddFact requires a ground atom");
    row.push_back(EncodeConstant(t));
  }
  GetOrCreate(fact.predicate(), fact.arity()).Insert(row);
}

void Database::AddRow(std::string_view predicate,
                      std::initializer_list<Value> row) {
  const Symbol sym = SymbolTable::Global().Intern(predicate);
  GetOrCreate(sym, row.size())
      .Insert(std::span<const Value>(row.begin(), row.size()));
}

void Database::AddRow(Symbol predicate, std::span<const Value> row) {
  GetOrCreate(predicate, row.size()).Insert(row);
}

void Database::MergeFrom(const Database& other) {
  for (const auto& [sym, rel] : other.relations_) {
    relations_.insert_or_assign(sym, rel);
  }
}

bool Database::Remove(Symbol predicate) {
  return relations_.erase(predicate) > 0;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [sym, rel] : relations_) total += rel.size();
  return total;
}

std::vector<Symbol> Database::Predicates() const {
  std::vector<Symbol> syms;
  syms.reserve(relations_.size());
  for (const auto& [sym, rel] : relations_) syms.push_back(sym);
  std::sort(syms.begin(), syms.end(), [](Symbol a, Symbol b) {
    return SymbolTable::Global().NameOf(a) < SymbolTable::Global().NameOf(b);
  });
  return syms;
}

std::string Database::ToString() const {
  std::string s;
  for (Symbol sym : Predicates()) {
    s += SymbolTable::Global().NameOf(sym);
    s += " = ";
    s += Find(sym)->ToString();
    s += "\n";
  }
  return s;
}

}  // namespace vbr
