#include "cq/homomorphism.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/budget.h"
#include "common/check.h"

namespace vbr {

namespace {

// Backtracking matcher. Atoms of `from` are visited in a connectivity-aware
// order (most-constrained first) and matched against the per-predicate
// candidate lists of `to`.
class Matcher {
 public:
  Matcher(const std::vector<Atom>& from, const std::vector<Atom>& to,
          const Substitution& seed,
          const std::function<bool(const Substitution&)>& callback)
      : from_(from),
        seed_(seed),
        callback_(callback),
        governor_(ResourceGovernor::Current()),
        node_cap_(governor_ ? governor_->search_node_cap() : 0) {
    for (const Atom& a : to) {
      VBR_CHECK_MSG(!a.is_builtin(),
                    "homomorphism search does not support builtin atoms");
      by_predicate_[a.predicate()].push_back(&a);
    }
    order_ = PlanOrder();
    subst_ = seed_;
  }

  // Runs the enumeration; returns true when not stopped by the callback and
  // not aborted by the resource governor (an aborted search behaves exactly
  // like an unsuccessful one: no homomorphism is reported).
  bool Run() {
    const bool completed = Recurse(0);
    if (governor_ != nullptr && nodes_ > 0) governor_->ChargeWork(nodes_);
    return completed && !aborted_;
  }

 private:
  // Orders `from` atoms so that each step is as constrained as possible:
  // start from atoms with bound/constant arguments, then grow along shared
  // variables.
  std::vector<size_t> PlanOrder() const {
    const size_t n = from_.size();
    std::vector<size_t> order;
    order.reserve(n);
    std::vector<bool> placed(n, false);
    std::unordered_set<Symbol> bound_vars;
    for (const auto& [var, target] : seed_.bindings()) {
      bound_vars.insert(var);
    }
    for (size_t step = 0; step < n; ++step) {
      size_t best = n;
      long best_score = std::numeric_limits<long>::min();
      for (size_t i = 0; i < n; ++i) {
        if (placed[i]) continue;
        long score = 0;
        for (Term t : from_[i].args()) {
          if (t.is_constant() || (t.is_variable() &&
                                  bound_vars.count(t.symbol()) > 0)) {
            score += 4;
          }
        }
        // Prefer rarer predicates as a cheap selectivity proxy.
        auto it = by_predicate_.find(from_[i].predicate());
        const size_t candidates =
            it == by_predicate_.end() ? 0 : it->second.size();
        score = score * 64 - static_cast<long>(std::min<size_t>(candidates, 63));
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      VBR_DCHECK(best < n);
      placed[best] = true;
      order.push_back(best);
      for (Term t : from_[best].args()) {
        if (t.is_variable()) bound_vars.insert(t.symbol());
      }
    }
    return order;
  }

  bool Recurse(size_t step) {
    if (governor_ != nullptr) {
      ++nodes_;
      // The per-search node cap is deterministic (identical for every search
      // regardless of scheduling); KeepGoing only observes the deadline and
      // injected faults, checked every 64 nodes to stay off the hot path.
      if ((node_cap_ != 0 && nodes_ > node_cap_) ||
          (nodes_ % 64 == 0 && !governor_->KeepGoing("cq.homomorphism"))) {
        aborted_ = true;
        return false;
      }
    }
    if (step == order_.size()) return callback_(subst_);
    const Atom& atom = from_[order_[step]];
    VBR_CHECK_MSG(!atom.is_builtin(),
                  "homomorphism search does not support builtin atoms");
    auto it = by_predicate_.find(atom.predicate());
    if (it == by_predicate_.end()) return true;  // No candidates: dead end.
    for (const Atom* candidate : it->second) {
      if (candidate->arity() != atom.arity()) continue;
      std::vector<Term> newly_bound;
      if (TryMatch(atom, *candidate, &newly_bound)) {
        if (!Recurse(step + 1)) return false;
      }
      for (Term v : newly_bound) subst_.Unbind(v);
    }
    return true;
  }

  // Attempts to unify atom against candidate under subst_; records the
  // variables bound by this attempt so the caller can undo them.
  bool TryMatch(const Atom& atom, const Atom& candidate,
                std::vector<Term>* newly_bound) {
    for (size_t i = 0; i < atom.arity(); ++i) {
      const Term s = atom.arg(i);
      const Term t = candidate.arg(i);
      if (s.is_constant()) {
        if (s != t) return false;
        continue;
      }
      if (auto image = subst_.Lookup(s)) {
        if (*image != t) return false;
        continue;
      }
      subst_.Bind(s, t);
      newly_bound->push_back(s);
    }
    return true;
  }

  const std::vector<Atom>& from_;
  const Substitution& seed_;
  const std::function<bool(const Substitution&)>& callback_;
  std::unordered_map<Symbol, std::vector<const Atom*>> by_predicate_;
  std::vector<size_t> order_;
  Substitution subst_;
  ResourceGovernor* const governor_;
  const uint64_t node_cap_;
  uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

std::optional<Substitution> FindHomomorphism(const std::vector<Atom>& from,
                                             const std::vector<Atom>& to,
                                             const Substitution& seed) {
  std::optional<Substitution> found;
  ForEachHomomorphism(from, to, seed, [&](const Substitution& h) {
    found = h;
    return false;  // Stop at the first hit.
  });
  return found;
}

bool ForEachHomomorphism(
    const std::vector<Atom>& from, const std::vector<Atom>& to,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& callback) {
  Matcher matcher(from, to, seed, callback);
  return matcher.Run();
}

}  // namespace vbr
