#include "cq/homomorphism.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <unordered_set>
#include <utility>

#include "common/budget.h"
#include "common/check.h"

namespace vbr {

AtomIndex::AtomIndex(const std::vector<Atom>& atoms) {
  entries_.reserve(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) {
    VBR_CHECK_MSG(!atoms[i].is_builtin(),
                  "homomorphism search does not support builtin atoms");
    Entry e;
    e.atom = &atoms[i];
    e.position = static_cast<uint32_t>(i);
    e.sig = ComputeAtomSignature(atoms[i]);
    entries_.push_back(e);
  }
  // Stable sort keeps original list order inside each (predicate, arity)
  // group, which keeps indexed searches byte-compatible with searches over
  // the plain list.
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.sig.predicate != b.sig.predicate) {
                       return a.sig.predicate < b.sig.predicate;
                     }
                     return a.sig.arity < b.sig.arity;
                   });
  entry_of_position_.resize(entries_.size());
  for (uint32_t i = 0; i < entries_.size(); ++i) {
    entry_of_position_[entries_[i].position] = i;
    const AtomSignature& sig = entries_[i].sig;
    if (groups_.empty() || groups_.back().predicate != sig.predicate ||
        groups_.back().arity != sig.arity) {
      groups_.push_back({sig.predicate, sig.arity, i, i + 1});
    } else {
      groups_.back().end = i + 1;
    }
  }
}

std::pair<uint32_t, uint32_t> AtomIndex::Bucket(Symbol predicate,
                                                uint32_t arity) const {
  auto it = std::lower_bound(
      groups_.begin(), groups_.end(), std::make_pair(predicate, arity),
      [](const Group& g, const std::pair<Symbol, uint32_t>& key) {
        if (g.predicate != key.first) return g.predicate < key.first;
        return g.arity < key.second;
      });
  if (it == groups_.end() || it->predicate != predicate || it->arity != arity) {
    return {0, 0};
  }
  return {it->begin, it->end};
}

namespace {

// Orders `from` atoms so that each step is as constrained as possible:
// start from atoms with bound/constant arguments, then grow along shared
// variables. `counts[i]` is the candidate count of atom i (prefiltered when
// a plan is available, raw bucket width for one-shot searches).
std::vector<size_t> MostConstrainedOrder(const std::vector<Atom>& from,
                                         const Substitution& seed,
                                         const std::vector<size_t>& counts) {
  const size_t n = from.size();
  std::vector<size_t> order;
  order.reserve(n);
  std::vector<bool> placed(n, false);
  std::unordered_set<Symbol> bound_vars;
  for (const auto& [var, target] : seed.bindings()) {
    bound_vars.insert(var);
  }
  for (size_t step = 0; step < n; ++step) {
    size_t best = n;
    long best_score = std::numeric_limits<long>::min();
    for (size_t i = 0; i < n; ++i) {
      if (placed[i]) continue;
      long score = 0;
      for (Term t : from[i].args()) {
        if (t.is_constant() ||
            (t.is_variable() && bound_vars.count(t.symbol()) > 0)) {
          score += 4;
        }
      }
      score = score * 64 - static_cast<long>(std::min<size_t>(counts[i], 63));
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    VBR_DCHECK(best < n);
    placed[best] = true;
    order.push_back(best);
    for (Term t : from[best].args()) {
      if (t.is_variable()) bound_vars.insert(t.symbol());
    }
  }
  return order;
}

}  // namespace

MatchPlan::MatchPlan(const std::vector<Atom>& from, const AtomIndex& to,
                     Substitution seed)
    : from_(&from), index_(&to), seed_(std::move(seed)) {
  const size_t n = from.size();
  atoms_.resize(n);
  for (size_t i = 0; i < n && !hopeless_; ++i) {
    const Atom& a = from[i];
    VBR_CHECK_MSG(!a.is_builtin(),
                  "homomorphism search does not support builtin atoms");
    PerAtom& pa = atoms_[i];
    pa.sig = ComputeAtomSignature(a);
    const auto [b, e] = to.Bucket(pa.sig.predicate, pa.sig.arity);
    pa.bucket_begin = b;
    pa.bucket_end = e;
    const uint32_t width = e - b;
    if (width <= 64) {
      for (uint32_t k = 0; k < width; ++k) {
        const AtomIndex::Entry& entry = to.entries()[b + k];
        if (!AtomSignatureMayMap(pa.sig, entry.sig)) continue;
        if (!AtomMayMapOnto(a, *entry.atom)) continue;
        pa.mask |= uint64_t{1} << k;
        ++pa.count;
      }
    } else {
      // Oversized bucket: no mask; the signature filter runs per step.
      for (uint32_t k = 0; k < width; ++k) {
        if (AtomSignatureMayMap(pa.sig, to.entries()[b + k].sig)) ++pa.count;
      }
    }
    // Some atom has no viable candidate at all: no homomorphism can exist,
    // under any exclude mask.
    if (pa.count == 0) hopeless_ = true;
  }
  if (!hopeless_) {
    std::vector<size_t> counts(n);
    for (size_t i = 0; i < n; ++i) counts[i] = atoms_[i].count;
    order_ = MostConstrainedOrder(from, seed_, counts);
  }
}

namespace {

// Backtracking matcher over an indexed target. Two candidate sources:
//
//  - Plan mode (repeated searches, e.g. Minimize probing n single-subgoal
//    removals against one body): candidates come from the MatchPlan's
//    prefiltered per-atom bitmasks, so the plan-construction cost — the
//    per-(from-atom, candidate) single-atom mappability check — amortizes
//    across every probe sharing the plan.
//
//  - Direct mode (one-shot searches, e.g. matching one view body against
//    the canonical database): candidates are the raw (predicate, arity)
//    bucket, filtered per step by the O(1) signature comparison against the
//    index's precomputed entry signatures. Building a MatchPlan here would
//    cost more than the single search it serves (measured on the Figure 6
//    star pipeline, where the per-view searches are tiny and plentiful).
class Matcher {
 public:
  // Plan mode.
  Matcher(const MatchPlan& plan,
          const std::function<bool(const Substitution&)>& callback,
          uint64_t exclude_mask)
      : from_(&plan.from()),
        index_(&plan.index()),
        plan_(&plan),
        callback_(callback),
        exclude_mask_(exclude_mask),
        governor_(ResourceGovernor::Current()),
        node_cap_(governor_ ? governor_->search_node_cap() : 0) {
    if (plan.hopeless()) {
      hopeless_ = true;
      return;
    }
    masks_.reserve(plan.atoms().size());
    for (const MatchPlan::PerAtom& pa : plan.atoms()) {
      uint64_t mask = pa.mask;
      if (exclude_mask_ != 0 && pa.bucket_end - pa.bucket_begin <= 64) {
        // Clear the bucket-local bits of excluded target atoms.
        uint64_t excluded = exclude_mask_;
        while (excluded != 0) {
          const uint32_t pos =
              static_cast<uint32_t>(std::countr_zero(excluded));
          excluded &= excluded - 1;
          if (pos >= index_->size()) break;
          const uint32_t entry = index_->EntryOfPosition(pos);
          if (entry >= pa.bucket_begin && entry < pa.bucket_end) {
            mask &= ~(uint64_t{1} << (entry - pa.bucket_begin));
          }
        }
        if (mask == 0) {
          hopeless_ = true;
          return;
        }
      }
      masks_.push_back(mask);
    }
    order_ = &plan.order();
    subst_ = plan.seed();
  }

  // Direct mode.
  Matcher(const std::vector<Atom>& from, const AtomIndex& index,
          const Substitution& seed,
          const std::function<bool(const Substitution&)>& callback,
          uint64_t exclude_mask)
      : from_(&from),
        index_(&index),
        callback_(callback),
        exclude_mask_(exclude_mask),
        governor_(ResourceGovernor::Current()),
        node_cap_(governor_ ? governor_->search_node_cap() : 0) {
    const size_t n = from.size();
    direct_.resize(n);
    std::vector<size_t> counts(n);
    for (size_t i = 0; i < n; ++i) {
      const Atom& a = from[i];
      VBR_CHECK_MSG(!a.is_builtin(),
                    "homomorphism search does not support builtin atoms");
      DirectAtom& da = direct_[i];
      da.sig = ComputeAtomSignature(a);
      std::tie(da.bucket_begin, da.bucket_end) =
          index.Bucket(da.sig.predicate, da.sig.arity);
      counts[i] = da.bucket_end - da.bucket_begin;
      if (counts[i] == 0) {
        // Empty bucket: no homomorphism can exist, and that verdict is
        // complete (exclusion only shrinks buckets further).
        hopeless_ = true;
        return;
      }
    }
    local_order_ = MostConstrainedOrder(from, seed, counts);
    order_ = &local_order_;
    subst_ = seed;
  }

  // Runs the enumeration; returns true when not stopped by the callback and
  // not aborted by the resource governor (an aborted search behaves exactly
  // like an unsuccessful one: no homomorphism is reported, but aborted()
  // distinguishes the two for callers that must not conflate them).
  bool Run() {
    if (hopeless_) return true;  // Complete: no homomorphism exists.
    const bool completed = Recurse(0);
    // Remainder of the last chunk (full chunks are charged inside Recurse).
    if (governor_ != nullptr && nodes_ > charged_) {
      governor_->ChargeWork(nodes_ - charged_);
    }
    return completed && !aborted_;
  }

  bool aborted() const { return aborted_; }

 private:
  struct DirectAtom {
    AtomSignature sig;
    uint32_t bucket_begin = 0;
    uint32_t bucket_end = 0;
  };

  bool Excluded(uint32_t position) const {
    return position < 64 && (exclude_mask_ >> position) & 1;
  }

  bool Recurse(size_t step) {
    if (governor_ != nullptr) {
      ++nodes_;
      // The per-search node cap is deterministic (identical for every search
      // regardless of scheduling); KeepGoing only observes the deadline and
      // injected faults, checked every 64 nodes to stay off the hot path.
      // Work is charged in the same 64-node chunks rather than all at once
      // after the search, so a long search can overshoot the shared work
      // budget by at most one chunk (regression-tested in
      // homomorphism_budget_test).
      if (node_cap_ != 0 && nodes_ > node_cap_) {
        aborted_ = true;
        return false;
      }
      if ((nodes_ & 63) == 0) {
        governor_->ChargeWork(64);
        charged_ = nodes_;
        if (!governor_->KeepGoing("cq.homomorphism")) {
          aborted_ = true;
          return false;
        }
      }
    }
    if (step == order_->size()) return callback_(subst_);
    const size_t idx = (*order_)[step];
    const Atom& atom = (*from_)[idx];
    if (plan_ != nullptr) {
      const MatchPlan::PerAtom& pa = plan_->atoms()[idx];
      if (pa.bucket_end - pa.bucket_begin <= 64) {
        uint64_t mask = masks_[idx];
        while (mask != 0) {
          const uint32_t k = static_cast<uint32_t>(std::countr_zero(mask));
          mask &= mask - 1;
          if (!Step(atom, index_->entries()[pa.bucket_begin + k], step)) {
            return false;
          }
        }
      } else {
        for (uint32_t j = pa.bucket_begin; j < pa.bucket_end; ++j) {
          const AtomIndex::Entry& entry = index_->entries()[j];
          if (Excluded(entry.position)) continue;
          if (!AtomSignatureMayMap(pa.sig, entry.sig)) continue;
          if (!Step(atom, entry, step)) return false;
        }
      }
    } else {
      const DirectAtom& da = direct_[idx];
      for (uint32_t j = da.bucket_begin; j < da.bucket_end; ++j) {
        const AtomIndex::Entry& entry = index_->entries()[j];
        if (Excluded(entry.position)) continue;
        if (!AtomSignatureMayMap(da.sig, entry.sig)) continue;
        if (!Step(atom, entry, step)) return false;
      }
    }
    return true;
  }

  bool Step(const Atom& atom, const AtomIndex::Entry& entry, size_t step) {
    std::vector<Term> newly_bound;
    if (TryMatch(atom, *entry.atom, &newly_bound)) {
      if (!Recurse(step + 1)) return false;
    }
    for (Term v : newly_bound) subst_.Unbind(v);
    return true;
  }

  // Attempts to unify atom against candidate under subst_; records the
  // variables bound by this attempt so the caller can undo them.
  bool TryMatch(const Atom& atom, const Atom& candidate,
                std::vector<Term>* newly_bound) {
    for (size_t i = 0; i < atom.arity(); ++i) {
      const Term s = atom.arg(i);
      const Term t = candidate.arg(i);
      if (s.is_constant()) {
        if (s != t) return false;
        continue;
      }
      if (auto image = subst_.Lookup(s)) {
        if (*image != t) return false;
        continue;
      }
      subst_.Bind(s, t);
      newly_bound->push_back(s);
    }
    return true;
  }

  const std::vector<Atom>* const from_;
  const AtomIndex* const index_;
  const MatchPlan* const plan_ = nullptr;  // null in direct mode
  const std::function<bool(const Substitution&)>& callback_;
  const uint64_t exclude_mask_;
  std::vector<uint64_t> masks_;        // plan mode
  std::vector<DirectAtom> direct_;     // direct mode
  std::vector<size_t> local_order_;    // direct mode
  const std::vector<size_t>* order_ = nullptr;
  Substitution subst_;
  ResourceGovernor* const governor_;
  const uint64_t node_cap_;
  uint64_t nodes_ = 0;
  uint64_t charged_ = 0;
  bool hopeless_ = false;
  bool aborted_ = false;
};

}  // namespace

std::optional<Substitution> FindHomomorphism(const std::vector<Atom>& from,
                                             const std::vector<Atom>& to,
                                             const Substitution& seed) {
  const AtomIndex index(to);
  return FindHomomorphism(from, index, seed);
}

std::optional<Substitution> FindHomomorphism(const std::vector<Atom>& from,
                                             const AtomIndex& to,
                                             const Substitution& seed) {
  std::optional<Substitution> found;
  ForEachHomomorphism(from, to, seed, [&](const Substitution& h) {
    found = h;
    return false;  // Stop at the first hit.
  });
  return found;
}

bool ForEachHomomorphism(
    const std::vector<Atom>& from, const std::vector<Atom>& to,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& callback) {
  const AtomIndex index(to);
  return ForEachHomomorphism(from, index, seed, callback);
}

bool ForEachHomomorphism(
    const std::vector<Atom>& from, const AtomIndex& to,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& callback,
    uint64_t exclude_mask, bool* aborted) {
  Matcher matcher(from, to, seed, callback, exclude_mask);
  const bool completed = matcher.Run();
  if (aborted != nullptr) *aborted = matcher.aborted();
  return completed;
}

bool ForEachHomomorphism(
    const MatchPlan& plan,
    const std::function<bool(const Substitution&)>& callback,
    uint64_t exclude_mask, bool* aborted) {
  Matcher matcher(plan, callback, exclude_mask);
  const bool completed = matcher.Run();
  if (aborted != nullptr) *aborted = matcher.aborted();
  return completed;
}

}  // namespace vbr
