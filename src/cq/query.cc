#include "cq/query.h"

#include <unordered_set>
#include <utility>

#include "common/check.h"

namespace vbr {

ConjunctiveQuery::ConjunctiveQuery(Atom head, std::vector<Atom> body)
    : head_(std::move(head)), body_(std::move(body)) {}

const Atom& ConjunctiveQuery::subgoal(size_t i) const {
  VBR_CHECK(i < body_.size());
  return body_[i];
}

std::vector<Term> ConjunctiveQuery::Variables() const {
  return CollectVariables(body_);
}

std::vector<Term> ConjunctiveQuery::DistinguishedVariables() const {
  std::vector<Term> result;
  std::unordered_set<Term, TermHash> seen;
  for (Term t : head_.args()) {
    if (t.is_variable() && seen.insert(t).second) result.push_back(t);
  }
  return result;
}

std::vector<Term> ConjunctiveQuery::ExistentialVariables() const {
  std::vector<Term> result;
  for (Term t : Variables()) {
    if (!IsDistinguished(t)) result.push_back(t);
  }
  return result;
}

bool ConjunctiveQuery::IsDistinguished(Term t) const {
  return head_.Mentions(t);
}

bool ConjunctiveQuery::IsSafe() const {
  for (Term t : head_.args()) {
    if (!t.is_variable()) continue;
    bool found = false;
    for (const Atom& a : body_) {
      if (!a.is_builtin() && a.Mentions(t)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool ConjunctiveQuery::HasBuiltins() const {
  for (const Atom& a : body_) {
    if (a.is_builtin()) return true;
  }
  return false;
}

ConjunctiveQuery ConjunctiveQuery::WithoutSubgoal(size_t index) const {
  VBR_CHECK(index < body_.size());
  std::vector<Atom> body;
  body.reserve(body_.size() - 1);
  for (size_t i = 0; i < body_.size(); ++i) {
    if (i != index) body.push_back(body_[i]);
  }
  return ConjunctiveQuery(head_, std::move(body));
}

ConjunctiveQuery ConjunctiveQuery::WithSubgoals(
    const std::vector<size_t>& keep) const {
  std::vector<Atom> body;
  body.reserve(keep.size());
  for (size_t i : keep) {
    VBR_CHECK(i < body_.size());
    body.push_back(body_[i]);
  }
  return ConjunctiveQuery(head_, std::move(body));
}

ConjunctiveQuery ConjunctiveQuery::WithBody(std::vector<Atom> body) const {
  return ConjunctiveQuery(head_, std::move(body));
}

std::string ConjunctiveQuery::ToString() const {
  std::string s = head_.ToString();
  s += " :- ";
  s += AtomsToString(body_);
  return s;
}

}  // namespace vbr
