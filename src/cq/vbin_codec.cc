#include "cq/vbin_codec.h"

#include <algorithm>
#include <utility>

namespace vbr {
namespace {

// Term kind tags.  0 is deliberately unused so a zeroed buffer decodes to
// an error, not a value.
constexpr uint8_t kTermInvalid = 1;
constexpr uint8_t kTermVariable = 2;
constexpr uint8_t kTermConstant = 3;

}  // namespace

void EncodeTerm(const Term& term, vbin::FileWriter* writer) {
  if (!term.is_valid()) {
    writer->AppendU8(kTermInvalid);
    return;
  }
  // The RAW interned name, never the display form: ToString may add
  // escape markers for unconventional spellings, but the kind byte above
  // already carries what escaping would re-derive.
  writer->AppendU8(term.is_variable() ? kTermVariable : kTermConstant);
  writer->AppendVarint(
      writer->Intern(SymbolTable::Global().NameOf(term.symbol())));
}

bool DecodeTerm(vbin::Reader* reader, const vbin::FileView& file, Term* out) {
  uint8_t kind = 0;
  if (!reader->ReadU8(&kind)) return false;
  if (kind == kTermInvalid) {
    *out = Term();
    return true;
  }
  if (kind != kTermVariable && kind != kTermConstant) {
    reader->Fail("bad term kind");
    return false;
  }
  uint64_t name_id = 0;
  if (!reader->ReadVarint(&name_id)) return false;
  std::string_view name;
  if (!file.String(name_id, &name, reader)) return false;
  if (name.empty()) {
    reader->Fail("empty term name");
    return false;
  }
  *out = kind == kTermVariable ? Var(name) : Const(name);
  return true;
}

void EncodeAtom(const Atom& atom, vbin::FileWriter* writer) {
  writer->AppendVarint(writer->Intern(atom.predicate_name()));
  writer->AppendVarint(atom.arity());
  for (const Term& t : atom.args()) {
    EncodeTerm(t, writer);
  }
}

bool DecodeAtom(vbin::Reader* reader, const vbin::FileView& file, Atom* out) {
  uint64_t pred_id = 0, arity = 0;
  if (!reader->ReadVarint(&pred_id) || !reader->ReadVarint(&arity)) {
    return false;
  }
  std::string_view predicate;
  if (!file.String(pred_id, &predicate, reader)) return false;
  if (predicate.empty()) {
    reader->Fail("empty predicate name");
    return false;
  }
  // Every term costs at least two bytes, so an honest arity is bounded by
  // the remaining body size — reject before reserving.
  if (arity > reader->remaining()) {
    reader->Fail("atom arity exceeds remaining bytes");
    return false;
  }
  std::vector<Term> args;
  args.reserve(arity);
  for (uint64_t i = 0; i < arity; ++i) {
    Term t;
    if (!DecodeTerm(reader, file, &t)) return false;
    args.push_back(t);
  }
  *out = Atom(SymbolTable::Global().Intern(predicate), std::move(args));
  return true;
}

void EncodeQuery(const ConjunctiveQuery& query, vbin::FileWriter* writer) {
  EncodeAtom(query.head(), writer);
  EncodeAtoms(query.body(), writer);
}

bool DecodeQuery(vbin::Reader* reader, const vbin::FileView& file,
                 ConjunctiveQuery* out) {
  Atom head;
  std::vector<Atom> body;
  if (!DecodeAtom(reader, file, &head) || !DecodeAtoms(reader, file, &body)) {
    return false;
  }
  *out = ConjunctiveQuery(std::move(head), std::move(body));
  return true;
}

void EncodeAtoms(const std::vector<Atom>& atoms, vbin::FileWriter* writer) {
  writer->AppendVarint(atoms.size());
  for (const Atom& a : atoms) {
    EncodeAtom(a, writer);
  }
}

bool DecodeAtoms(vbin::Reader* reader, const vbin::FileView& file,
                 std::vector<Atom>* out) {
  uint64_t count = 0;
  if (!reader->ReadVarint(&count)) return false;
  if (count > reader->remaining()) {
    reader->Fail("atom count exceeds remaining bytes");
    return false;
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Atom a;
    if (!DecodeAtom(reader, file, &a)) return false;
    out->push_back(std::move(a));
  }
  return true;
}

void EncodeQueries(const std::vector<ConjunctiveQuery>& queries,
                   vbin::FileWriter* writer) {
  writer->AppendVarint(queries.size());
  for (const ConjunctiveQuery& q : queries) {
    EncodeQuery(q, writer);
  }
}

bool DecodeQueries(vbin::Reader* reader, const vbin::FileView& file,
                   std::vector<ConjunctiveQuery>* out) {
  uint64_t count = 0;
  if (!reader->ReadVarint(&count)) return false;
  if (count > reader->remaining()) {
    reader->Fail("query count exceeds remaining bytes");
    return false;
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ConjunctiveQuery q;
    if (!DecodeQuery(reader, file, &q)) return false;
    out->push_back(std::move(q));
  }
  return true;
}

void EncodeSubstitution(const Substitution& subst, vbin::FileWriter* writer) {
  // bindings() is an unordered_map; sort by variable name so the encoding
  // is deterministic across processes and hash-seed changes.
  std::vector<std::pair<std::string, Term>> sorted;
  sorted.reserve(subst.bindings().size());
  for (const auto& [var_sym, target] : subst.bindings()) {
    sorted.emplace_back(SymbolTable::Global().NameOf(var_sym), target);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  writer->AppendVarint(sorted.size());
  for (const auto& [var_name, target] : sorted) {
    writer->AppendVarint(writer->Intern(var_name));
    EncodeTerm(target, writer);
  }
}

bool DecodeSubstitution(vbin::Reader* reader, const vbin::FileView& file,
                        Substitution* out) {
  uint64_t count = 0;
  if (!reader->ReadVarint(&count)) return false;
  if (count > reader->remaining()) {
    reader->Fail("binding count exceeds remaining bytes");
    return false;
  }
  *out = Substitution();
  std::string_view previous_name;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t var_id = 0;
    if (!reader->ReadVarint(&var_id)) return false;
    std::string_view var_name;
    if (!file.String(var_id, &var_name, reader)) return false;
    if (var_name.empty()) {
      reader->Fail("empty variable name");
      return false;
    }
    // Enforce the canonical order so re-encoding is byte-identical and a
    // hostile file cannot smuggle duplicate bindings.
    if (i > 0 && !(previous_name < var_name)) {
      reader->Fail("substitution bindings out of order");
      return false;
    }
    previous_name = var_name;
    Term target;
    if (!DecodeTerm(reader, file, &target)) return false;
    if (!target.is_valid()) {
      reader->Fail("substitution target invalid");
      return false;
    }
    if (!out->Bind(Var(var_name), target)) {
      reader->Fail("duplicate substitution binding");
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Whole files

std::string EncodeQueryFile(const ConjunctiveQuery& query) {
  vbin::FileWriter writer(vbin::FileKind::kQuery);
  EncodeQuery(query, &writer);
  return std::move(writer).Finish();
}

vbin::Status DecodeQueryFile(std::string_view bytes, ConjunctiveQuery* out) {
  vbin::FileView file;
  vbin::Status status = vbin::OpenFile(bytes, &file, vbin::FileKind::kQuery);
  if (!status.ok()) return status;
  vbin::Reader reader(file.body);
  if (!DecodeQuery(&reader, file, out) || !reader.AtEnd()) {
    if (reader.ok()) reader.Fail("trailing bytes");
    return reader.ToStatus("query body");
  }
  return vbin::Status::Ok();
}

std::string EncodeProgramFile(const std::vector<ConjunctiveQuery>& rules) {
  vbin::FileWriter writer(vbin::FileKind::kProgram);
  EncodeQueries(rules, &writer);
  return std::move(writer).Finish();
}

vbin::Status DecodeProgramFile(std::string_view bytes,
                               std::vector<ConjunctiveQuery>* out) {
  vbin::FileView file;
  vbin::Status status = vbin::OpenFile(bytes, &file, vbin::FileKind::kProgram);
  if (!status.ok()) return status;
  vbin::Reader reader(file.body);
  if (!DecodeQueries(&reader, file, out) || !reader.AtEnd()) {
    if (reader.ok()) reader.Fail("trailing bytes");
    return reader.ToStatus("program body");
  }
  return vbin::Status::Ok();
}

}  // namespace vbr
