#ifndef VBR_CQ_PARSER_H_
#define VBR_CQ_PARSER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cq/query.h"

namespace vbr {

// Parser for a datalog-style surface syntax:
//
//     q(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C).
//
// Conventions (following the paper): identifiers starting with an upper-case
// letter or '_' are variables; identifiers starting with a lower-case letter
// and integer literals are constants. Terms whose names break the
// convention use explicit markers — `?name` (or `?"name"`) is a variable
// regardless of spelling, `"name"` is a constant — which is what
// Term::ToString emits for such names, so ToString -> Parse preserves the
// term kind for every name. Builtin comparison subgoals are written infix:
// `X <= Y`. A program is a sequence of rules separated by periods or
// newlines; `%` and `#` start comments that run to end of line.

// Parses a single rule. On failure returns nullopt and, if `error` is
// non-null, stores a message with position information.
std::optional<ConjunctiveQuery> ParseQuery(std::string_view text,
                                           std::string* error = nullptr);

// Parses a sequence of rules.
std::optional<std::vector<ConjunctiveQuery>> ParseProgram(
    std::string_view text, std::string* error = nullptr);

// CHECK-failing convenience wrappers for tests and examples.
ConjunctiveQuery MustParseQuery(std::string_view text);
std::vector<ConjunctiveQuery> MustParseProgram(std::string_view text);

}  // namespace vbr

#endif  // VBR_CQ_PARSER_H_
