#ifndef VBR_CQ_TERM_H_
#define VBR_CQ_TERM_H_

#include <compare>
#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "cq/symbol.h"

namespace vbr {

// A term is a variable or a constant, identified by an interned Symbol.
// Terms are small value types; copying is free.
//
// Following the paper's convention, variables print with a leading
// upper-case letter and constants with a lower-case letter or digit, but the
// kind is carried explicitly so any spelling works.

// Prints `name` so the parser reads back a term of the same kind.
// Conventional spellings (upper/underscore-initial variables,
// lower/digit-initial constants) print verbatim; anything else gets an
// explicit marker: `?name` / `?"name"` for variables, `"name"` for
// constants.  ToString uses this, so ToString -> Parse is total and
// kind-faithful (defined in term.cc).
std::string FormatTermText(std::string_view name, bool is_variable);

class Term {
 public:
  // Default-constructed terms are invalid; is_valid() is false.
  constexpr Term() = default;

  static constexpr Term Variable(Symbol sym) { return Term(sym, /*var=*/true); }
  static constexpr Term Constant(Symbol sym) {
    return Term(sym, /*var=*/false);
  }

  bool is_valid() const { return sym_ != kInvalidSymbol; }
  bool is_variable() const { return is_valid() && is_var_; }
  bool is_constant() const { return is_valid() && !is_var_; }
  Symbol symbol() const { return sym_; }

  // The interned name, escaped (FormatTermText) whenever the plain
  // spelling would parse back as the wrong kind.
  std::string ToString() const {
    return is_valid() ? FormatTermText(SymbolTable::Global().NameOf(sym_),
                                       is_var_)
                      : "<invalid>";
  }

  friend bool operator==(Term a, Term b) = default;
  friend auto operator<=>(Term a, Term b) = default;

 private:
  constexpr Term(Symbol sym, bool var) : sym_(sym), is_var_(var) {}

  Symbol sym_ = kInvalidSymbol;
  bool is_var_ = false;
};

// Convenience constructors interning into the global symbol table.
inline Term Var(std::string_view name) {
  return Term::Variable(SymbolTable::Global().Intern(name));
}
inline Term Const(std::string_view name) {
  return Term::Constant(SymbolTable::Global().Intern(name));
}

// Fresh variable whose name starts with `prefix` and is guaranteed new.
inline Term FreshVar(std::string_view prefix) {
  return Term::Variable(SymbolTable::Global().Fresh(prefix));
}

// Fresh constant, used when freezing a query into its canonical database.
inline Term FreshConst(std::string_view prefix) {
  return Term::Constant(SymbolTable::Global().Fresh(prefix));
}

struct TermHash {
  size_t operator()(Term t) const {
    const uint64_t x = (static_cast<uint64_t>(t.symbol()) << 1) |
                       (t.is_variable() ? 1u : 0u);
    return std::hash<uint64_t>()(x * 0x9e3779b97f4a7c15ULL);
  }
};

}  // namespace vbr

#endif  // VBR_CQ_TERM_H_
