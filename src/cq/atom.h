#ifndef VBR_CQ_ATOM_H_
#define VBR_CQ_ATOM_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "cq/term.h"

namespace vbr {

// An atom (subgoal) p(t1, ..., tk): an interned predicate symbol applied to
// terms. Atoms over base relations and over views use the same type; the
// predicate symbol distinguishes them in context.
//
// Built-in comparison predicates ("<", "<=", ">", ">=", "!=") are
// represented as ordinary atoms flagged by is_builtin(); only the engine and
// the union-rewriting extension accept them.
class Atom {
 public:
  Atom() = default;
  Atom(Symbol predicate, std::vector<Term> args);
  // Convenience: interns `predicate` in the global symbol table.
  Atom(std::string_view predicate, std::initializer_list<Term> args);
  Atom(std::string_view predicate, std::vector<Term> args);

  Symbol predicate() const { return predicate_; }
  const std::string& predicate_name() const;
  const std::vector<Term>& args() const { return args_; }
  std::vector<Term>& mutable_args() { return args_; }
  size_t arity() const { return args_.size(); }
  Term arg(size_t i) const;

  // True for the reserved comparison predicates.
  bool is_builtin() const;

  // Appends each variable argument (with repetition) to `out`.
  void AppendVariables(std::vector<Term>* out) const;

  // True if some argument equals `t`.
  bool Mentions(Term t) const;

  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b) = default;

 private:
  Symbol predicate_ = kInvalidSymbol;
  std::vector<Term> args_;
};

struct AtomHash {
  size_t operator()(const Atom& a) const;
};

// Registers the comparison predicates and returns true if `predicate` is one
// of them.
bool IsBuiltinPredicate(Symbol predicate);

// Distinct variables across `atoms` in first-occurrence order.
std::vector<Term> CollectVariables(const std::vector<Atom>& atoms);

// Distinct terms (variables and constants) across `atoms` in
// first-occurrence order.
std::vector<Term> CollectTerms(const std::vector<Atom>& atoms);

std::string AtomsToString(const std::vector<Atom>& atoms);

}  // namespace vbr

#endif  // VBR_CQ_ATOM_H_
