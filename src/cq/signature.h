#ifndef VBR_CQ_SIGNATURE_H_
#define VBR_CQ_SIGNATURE_H_

#include <cstdint>
#include <vector>

#include "cq/atom.h"
#include "cq/query.h"

namespace vbr {

// O(1) prefilters for homomorphism / containment-mapping search (DESIGN.md
// "Hot-path representations").
//
// Every rewriting algorithm bottoms out in containment-mapping search, and
// most (source, target) pairs the algorithms generate have no mapping at
// all. Signatures are small bitmask summaries — computed once per atom or
// query and carried alongside the structures — whose comparison rejects
// provably-unmappable pairs before any backtracking starts. Every check
// below is a NECESSARY condition for a homomorphism, never a sufficient
// one: a rejected pair is guaranteed to have no mapping (property-tested
// against the unfiltered search in signature_prefilter_test), an accepted
// pair still goes through the full search.

// Folds a symbol into a single bit of a 64-bit Bloom mask.
inline uint64_t SymbolBloomBit(Symbol s) {
  return uint64_t{1}
         << ((static_cast<uint64_t>(static_cast<uint32_t>(s)) *
              0x9e3779b97f4a7c15ULL) >>
             58);
}

// Per-atom summary. All fields are invariant under variable renaming except
// the constant blooms, which depend only on which constants appear.
struct AtomSignature {
  Symbol predicate = kInvalidSymbol;
  uint32_t arity = 0;
  // Number of distinct terms among the arguments. A homomorphism can merge
  // arguments but never split them, so for h(a) = b it must hold that
  // distinct(b) <= distinct(a).
  uint32_t num_distinct = 0;
  // Bit i set (i < 64) when argument i is a constant. Homomorphisms fix
  // constants, so source constant positions must be constant positions of
  // the target with the same constant — but a source VARIABLE may also land
  // on a target constant, so the reverse inclusion does not hold.
  uint64_t const_positions = 0;
  // Bloom over the constant symbols appearing in the atom.
  uint64_t const_bloom = 0;
};

AtomSignature ComputeAtomSignature(const Atom& a);

// O(1): necessary conditions for the existence of a homomorphism h with
// h(source_atom) == target_atom, given only their signatures.
inline bool AtomSignatureMayMap(const AtomSignature& source,
                                const AtomSignature& target) {
  return source.predicate == target.predicate && source.arity == target.arity &&
         target.num_distinct <= source.num_distinct &&
         (source.const_positions & ~target.const_positions) == 0 &&
         (source.const_bloom & ~target.const_bloom) == 0;
}

// Exact single-atom check: true iff SOME substitution h on source's
// variables has h(source) == target. Holds iff source constants recur
// verbatim in target and target's argument-equality pattern coarsens
// source's (positions equal in source are equal in target). O(arity^2) in
// the worst case but arities are tiny; used once per (from-atom, candidate)
// pair when building candidate masks, replacing per-node rediscovery of the
// same conflicts inside the backtracking search.
bool AtomMayMapOnto(const Atom& source, const Atom& target);

// Per-query summary for containment prefiltering.
struct QuerySignature {
  uint32_t head_arity = 0;
  uint32_t num_subgoals = 0;
  // Bloom over body predicate symbols.
  uint64_t predicate_bloom = 0;
  // Bloom over body constant symbols.
  uint64_t constant_bloom = 0;
};

QuerySignature ComputeQuerySignature(const ConjunctiveQuery& q);

// O(1): necessary conditions for a containment mapping from `source` into
// `target` (h(head(source)) = head(target), h(body(source)) ⊆ body(target)).
// Every source body predicate must appear in target's body, and every source
// body constant must survive into target's body, since h preserves
// predicates and fixes constants. Head constants are NOT folded in: a source
// head variable may map onto a target head constant without that constant
// appearing anywhere in source.
inline bool QuerySignatureMayMap(const QuerySignature& source,
                                 const QuerySignature& target) {
  return source.head_arity == target.head_arity &&
         (source.predicate_bloom & ~target.predicate_bloom) == 0 &&
         (source.constant_bloom & ~target.constant_bloom) == 0;
}

}  // namespace vbr

#endif  // VBR_CQ_SIGNATURE_H_
