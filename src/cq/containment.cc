#include "cq/containment.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "common/budget.h"
#include "common/check.h"
#include "common/metrics.h"
#include "cq/homomorphism.h"
#include "cq/signature.h"

namespace vbr {

namespace {

// Seeds a substitution that forces head(source) to map onto head(target).
// Returns nullopt on an immediate conflict (mismatched arity, clashing
// constants, or a source head variable required to map to two targets).
std::optional<Substitution> SeedFromHeads(const ConjunctiveQuery& source,
                                          const ConjunctiveQuery& target) {
  const Atom& sh = source.head();
  const Atom& th = target.head();
  if (sh.arity() != th.arity()) return std::nullopt;
  Substitution seed;
  for (size_t i = 0; i < sh.arity(); ++i) {
    const Term s = sh.arg(i);
    const Term t = th.arg(i);
    if (s.is_constant()) {
      if (s != t) return std::nullopt;
      continue;
    }
    if (!seed.Bind(s, t)) return std::nullopt;
  }
  return seed;
}

void CheckNoBuiltins(const ConjunctiveQuery& q) {
  VBR_CHECK_MSG(!q.HasBuiltins(),
                "containment tests require comparison-free queries");
}

// Accounts for one containment-mapping attempt: bumps the process-wide
// check counter and charges one unit of governed work. Returns false when
// the budget is already gone and the attempt must not run.
bool ChargeContainmentAttempt() {
  // Process-wide count of containment (homomorphism) searches: the unit of
  // work every rewriting algorithm bottoms out in.
  static Counter* const checks =
      MetricsRegistry::Global().GetCounter("cq.containment_checks");
  checks->Increment();
  if (ResourceGovernor* governor = ResourceGovernor::Current()) {
    governor->ChargeWork(1);
    if (!governor->KeepGoing("cq.containment")) return false;
  }
  return true;
}

}  // namespace

bool IsContainmentMapping(const ConjunctiveQuery& source,
                          const ConjunctiveQuery& target,
                          const Substitution& mapping) {
  // Certificates assert equivalence of answer relations, so the heads must
  // name the same relation; args() comparison below covers arity.
  if (source.head().predicate() != target.head().predicate()) return false;
  if (mapping.Apply(source.head()).args() != target.head().args()) {
    return false;
  }
  // Sort target body once, then binary-search each mapped source atom:
  // O((n + m) log n) instead of the quadratic scan.
  std::vector<const Atom*> sorted;
  sorted.reserve(target.body().size());
  for (const Atom& a : target.body()) sorted.push_back(&a);
  const auto less = [](const Atom* a, const Atom* b) {
    if (a->predicate() != b->predicate()) {
      return a->predicate() < b->predicate();
    }
    return a->args() < b->args();
  };
  std::sort(sorted.begin(), sorted.end(), less);
  for (const Atom& atom : source.body()) {
    const Atom mapped = mapping.Apply(atom);
    auto it = std::lower_bound(sorted.begin(), sorted.end(), &mapped, less);
    if (it == sorted.end() || !(**it == mapped)) return false;
  }
  return true;
}

ContainmentSearch FindContainmentMappingEx(const ConjunctiveQuery& source,
                                           const ConjunctiveQuery& target) {
  CheckNoBuiltins(source);
  CheckNoBuiltins(target);
  // Each mapping attempt is one unit of governed work. An attempt skipped
  // because the budget is gone reports "no mapping, incomplete"; callers
  // that treat nullopt as a proof must consult `complete` (Minimize does).
  if (!ChargeContainmentAttempt()) return {std::nullopt, false};
  // O(1) signature prefilter: a rejected pair provably has no mapping, and
  // the verdict is complete without any search.
  static Counter* const prefiltered = MetricsRegistry::Global().GetCounter(
      "cq.containment_prefilter_rejects");
  if (!QuerySignatureMayMap(ComputeQuerySignature(source),
                            ComputeQuerySignature(target))) {
    prefiltered->Increment();
    return {std::nullopt, true};
  }
  std::optional<Substitution> seed = SeedFromHeads(source, target);
  if (!seed.has_value()) return {std::nullopt, true};
  const AtomIndex index(target.body());
  std::optional<Substitution> found;
  bool aborted = false;
  ForEachHomomorphism(
      source.body(), index, *seed,
      [&](const Substitution& h) {
        found = h;
        return false;  // Stop at the first hit.
      },
      /*exclude_mask=*/0, &aborted);
  return {std::move(found), !aborted};
}

std::optional<Substitution> FindContainmentMapping(
    const ConjunctiveQuery& source, const ConjunctiveQuery& target) {
  return FindContainmentMappingEx(source, target).mapping;
}

bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  // Governed checks bypass the memo: their searches can be cut short (the
  // verdict would be unsound to reuse) and a hit would change how much
  // governed work this request performs, breaking budget determinism.
  if (ResourceGovernor::Current() != nullptr) {
    return FindContainmentMapping(q2, q1).has_value();
  }
  // Tiny pairs bypass the memo too: below this size the prefiltered search
  // itself is cheaper than serializing two keys and taking a shard lock, so
  // memoization is a net loss (measured on the Figure 6 star pipeline,
  // whose view-equivalence grouping issues thousands of 1-3 subgoal
  // checks). The memo pays for itself on the deep searches.
  if (q1.num_subgoals() + q2.num_subgoals() <= 6) {
    return FindContainmentMapping(q2, q1).has_value();
  }
  static Counter* const hits =
      MetricsRegistry::Global().GetCounter("cq.containment_memo_hits");
  static Counter* const misses =
      MetricsRegistry::Global().GetCounter("cq.containment_memo_misses");
  ContainmentMemo& memo = ContainmentMemo::Global();
  const std::string key = ContainmentMemo::KeyFor(q2, q1);
  if (std::optional<bool> cached = memo.Lookup(key)) {
    hits->Increment();
    return *cached;
  }
  misses->Increment();
  // Ungoverned searches always run to completion, so the verdict is safe to
  // memoize unconditionally.
  const bool verdict = FindContainmentMapping(q2, q1).has_value();
  memo.Insert(key, verdict);
  return verdict;
}

bool AreEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return IsContainedIn(q1, q2) && IsContainedIn(q2, q1);
}

bool IsProperlyContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2) {
  return IsContainedIn(q1, q2) && !IsContainedIn(q2, q1);
}

ConjunctiveQuery Minimize(const ConjunctiveQuery& q, bool* complete) {
  CheckNoBuiltins(q);
  VBR_CHECK_MSG(q.IsSafe(), "cannot minimize an unsafe query");
  if (complete != nullptr) *complete = true;
  ConjunctiveQuery current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    const size_t n = current.num_subgoals();
    // A mapping witnessing the removal of subgoal i must send atom i onto a
    // DIFFERENT body atom with the same predicate and arity, so subgoals
    // whose (predicate, arity) is unique in the body can never be redundant.
    // Duplicate-free bodies — the common case for generated views, which
    // the equivalence grouping minimizes by the thousand — are therefore
    // already minimal, and the round skips all index/plan setup. The scan is
    // O(n^2) on symbols, far below the cost of one removal probe.
    const auto has_twin = [&](size_t i) {
      const Atom& a = current.subgoal(i);
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const Atom& b = current.subgoal(j);
        if (a.predicate() == b.predicate() && a.arity() == b.arity()) {
          return true;
        }
      }
      return false;
    };
    bool any_duplicate = false;
    for (size_t i = 0; i < n; ++i) {
      if (has_twin(i)) {
        any_duplicate = true;
        break;
      }
    }
    if (!any_duplicate) return current;
    if (n > 64) {
      // Wide bodies fall back to materialized candidates (no exclude-mask
      // bits past 64). Removing a subgoal only relaxes the query
      // (current ⊑ candidate), so equivalence holds iff candidate ⊑
      // current, i.e., iff there is a containment mapping from current into
      // candidate.
      for (size_t i = 0; i < n; ++i) {
        if (!has_twin(i)) continue;  // Provably not redundant.
        ConjunctiveQuery candidate = current.WithoutSubgoal(i);
        if (!candidate.IsSafe()) continue;
        const ContainmentSearch search =
            FindContainmentMappingEx(current, candidate);
        if (!search.complete) {
          // Budget gone mid-minimization: the current query is equivalent
          // to q but possibly not minimal. Stop instead of letting the
          // non-minimal form masquerade as a core.
          if (complete != nullptr) *complete = false;
          return current;
        }
        if (search.mapping.has_value()) {
          current = candidate;
          changed = true;
          break;
        }
      }
      continue;
    }
    // Fast path: one shared index and match plan over the current body;
    // "body minus subgoal i" is probed via the exclude mask instead of
    // materializing n subqueries (and re-running candidate prefiltering n
    // times) per round.
    const AtomIndex index(current.body());
    std::unordered_map<Symbol, uint64_t> var_occurrences;
    for (size_t i = 0; i < n; ++i) {
      for (Term t : current.subgoal(i).args()) {
        if (t.is_variable()) {
          var_occurrences[t.symbol()] |= uint64_t{1} << i;
        }
      }
    }
    const std::vector<Term> head_vars = current.DistinguishedVariables();
    // Heads are identical, so the seed (identity on head variables) always
    // exists.
    const std::optional<Substitution> seed = SeedFromHeads(current, current);
    VBR_DCHECK(seed.has_value());
    const MatchPlan plan(current.body(), index, *seed);
    for (size_t i = 0; i < n; ++i) {
      if (!has_twin(i)) continue;  // Provably not redundant.
      // Safety check, mask form: every head variable must still occur in
      // some remaining subgoal.
      bool safe = true;
      for (Term hv : head_vars) {
        auto it = var_occurrences.find(hv.symbol());
        if (it == var_occurrences.end() ||
            (it->second & ~(uint64_t{1} << i)) == 0) {
          safe = false;
          break;
        }
      }
      if (!safe) continue;
      if (!ChargeContainmentAttempt()) {
        if (complete != nullptr) *complete = false;
        return current;
      }
      bool found = false;
      bool aborted = false;
      ForEachHomomorphism(
          plan,
          [&](const Substitution&) {
            found = true;
            return false;
          },
          /*exclude_mask=*/uint64_t{1} << i, &aborted);
      if (aborted) {
        if (complete != nullptr) *complete = false;
        return current;
      }
      if (found) {
        current = current.WithoutSubgoal(i);
        changed = true;
        break;
      }
    }
  }
  return current;
}

bool IsMinimal(const ConjunctiveQuery& q) {
  for (size_t i = 0; i < q.num_subgoals(); ++i) {
    ConjunctiveQuery candidate = q.WithoutSubgoal(i);
    if (!candidate.IsSafe()) continue;
    if (FindContainmentMapping(q, candidate).has_value()) return false;
  }
  return true;
}

ContainmentMemo& ContainmentMemo::Global() {
  static ContainmentMemo* const memo = new ContainmentMemo();
  return *memo;
}

namespace {

void AppendU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
  out->push_back(static_cast<char>(v >> 8));
  out->push_back(static_cast<char>(v >> 16));
  out->push_back(static_cast<char>(v >> 24));
}

void AppendAtom(const Atom& a, std::string* out) {
  AppendU32(static_cast<uint32_t>(a.predicate()), out);
  AppendU32(static_cast<uint32_t>(a.arity()), out);
  for (Term t : a.args()) {
    out->push_back(t.is_variable() ? 'v' : 'c');
    AppendU32(static_cast<uint32_t>(t.symbol()), out);
  }
}

void AppendQuery(const ConjunctiveQuery& q, std::string* out) {
  AppendAtom(q.head(), out);
  AppendU32(static_cast<uint32_t>(q.num_subgoals()), out);
  for (const Atom& a : q.body()) AppendAtom(a, out);
}

}  // namespace

std::string ContainmentMemo::KeyFor(const ConjunctiveQuery& source,
                                    const ConjunctiveQuery& target) {
  // Exact structural serialization in fixed-width binary (interned symbol
  // ids, arity-prefixed atoms, subgoal-count separator): collision-free
  // between distinct query pairs and much cheaper to produce than the
  // pretty-printed form, since memo-hit cost is dominated by key building.
  std::string key;
  key.reserve(16 + 14 * (source.num_subgoals() + target.num_subgoals()));
  AppendQuery(source, &key);
  AppendQuery(target, &key);
  return key;
}

ContainmentMemo::Shard& ContainmentMemo::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>()(key) % kNumShards];
}

std::optional<bool> ContainmentMemo::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.verdicts.find(key);
  if (it == shard.verdicts.end()) return std::nullopt;
  return it->second;
}

void ContainmentMemo::Insert(const std::string& key, bool verdict) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.verdicts.size() >= kShardCap) shard.verdicts.clear();
  shard.verdicts.emplace(key, verdict);
}

void ContainmentMemo::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.verdicts.clear();
  }
}

}  // namespace vbr
