#include "cq/containment.h"

#include "common/budget.h"
#include "common/check.h"
#include "common/metrics.h"
#include "cq/homomorphism.h"

namespace vbr {

namespace {

// Seeds a substitution that forces head(source) to map onto head(target).
// Returns nullopt on an immediate conflict (mismatched arity, clashing
// constants, or a source head variable required to map to two targets).
std::optional<Substitution> SeedFromHeads(const ConjunctiveQuery& source,
                                          const ConjunctiveQuery& target) {
  const Atom& sh = source.head();
  const Atom& th = target.head();
  if (sh.arity() != th.arity()) return std::nullopt;
  Substitution seed;
  for (size_t i = 0; i < sh.arity(); ++i) {
    const Term s = sh.arg(i);
    const Term t = th.arg(i);
    if (s.is_constant()) {
      if (s != t) return std::nullopt;
      continue;
    }
    if (!seed.Bind(s, t)) return std::nullopt;
  }
  return seed;
}

void CheckNoBuiltins(const ConjunctiveQuery& q) {
  VBR_CHECK_MSG(!q.HasBuiltins(),
                "containment tests require comparison-free queries");
}

}  // namespace

bool IsContainmentMapping(const ConjunctiveQuery& source,
                          const ConjunctiveQuery& target,
                          const Substitution& mapping) {
  if (mapping.Apply(source.head()).args() != target.head().args()) {
    return false;
  }
  for (const Atom& atom : source.body()) {
    const Atom mapped = mapping.Apply(atom);
    bool found = false;
    for (const Atom& candidate : target.body()) {
      if (candidate == mapped) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::optional<Substitution> FindContainmentMapping(
    const ConjunctiveQuery& source, const ConjunctiveQuery& target) {
  CheckNoBuiltins(source);
  CheckNoBuiltins(target);
  // Process-wide count of containment (homomorphism) searches: the unit of
  // work every rewriting algorithm bottoms out in.
  static Counter* const checks =
      MetricsRegistry::Global().GetCounter("cq.containment_checks");
  checks->Increment();
  // Each mapping attempt is one unit of governed work. An attempt skipped
  // because the budget is gone reports "no mapping", the conservative
  // direction for every caller (Minimize keeps the subgoal, covers and
  // equivalence filters drop the candidate).
  if (ResourceGovernor* governor = ResourceGovernor::Current()) {
    governor->ChargeWork(1);
    if (!governor->KeepGoing("cq.containment")) return std::nullopt;
  }
  std::optional<Substitution> seed = SeedFromHeads(source, target);
  if (!seed.has_value()) return std::nullopt;
  return FindHomomorphism(source.body(), target.body(), *seed);
}

bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return FindContainmentMapping(q2, q1).has_value();
}

bool AreEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return IsContainedIn(q1, q2) && IsContainedIn(q2, q1);
}

bool IsProperlyContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2) {
  return IsContainedIn(q1, q2) && !IsContainedIn(q2, q1);
}

ConjunctiveQuery Minimize(const ConjunctiveQuery& q) {
  CheckNoBuiltins(q);
  VBR_CHECK_MSG(q.IsSafe(), "cannot minimize an unsafe query");
  ConjunctiveQuery current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < current.num_subgoals(); ++i) {
      ConjunctiveQuery candidate = current.WithoutSubgoal(i);
      if (!candidate.IsSafe()) continue;
      // Removing a subgoal only relaxes the query (current ⊑ candidate), so
      // equivalence holds iff candidate ⊑ current, i.e., iff there is a
      // containment mapping from current into candidate.
      if (FindContainmentMapping(current, candidate).has_value()) {
        current = candidate;
        changed = true;
        break;
      }
    }
  }
  return current;
}

bool IsMinimal(const ConjunctiveQuery& q) {
  for (size_t i = 0; i < q.num_subgoals(); ++i) {
    ConjunctiveQuery candidate = q.WithoutSubgoal(i);
    if (!candidate.IsSafe()) continue;
    if (FindContainmentMapping(q, candidate).has_value()) return false;
  }
  return true;
}

}  // namespace vbr
