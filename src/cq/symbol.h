#ifndef VBR_CQ_SYMBOL_H_
#define VBR_CQ_SYMBOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace vbr {

// A Symbol is a dense integer id for an interned string (predicate name,
// variable name, or constant name).
using Symbol = int32_t;

inline constexpr Symbol kInvalidSymbol = -1;

// Interns strings to Symbols and back.
//
// The library routes all naming through SymbolTable::Global() so that terms
// and atoms are cheap value types (a Symbol plus a tag). The table only
// grows; Symbols are never invalidated. The global table is NOT thread-safe;
// the library is designed for single-threaded use (benchmark drivers run
// repetitions sequentially).
class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the id for `name`, interning it on first use.
  Symbol Intern(std::string_view name);

  // Returns the id for `name` if already interned, kInvalidSymbol otherwise.
  Symbol Find(std::string_view name) const;

  // Returns the string for an id. `sym` must have been produced by this
  // table.
  const std::string& NameOf(Symbol sym) const;

  // Interns and returns a name of the form "<prefix>$<n>" that was not
  // previously interned. Used to create fresh variables during expansion.
  Symbol Fresh(std::string_view prefix);

  size_t size() const { return names_.size(); }

  // The process-wide table used by the convenience constructors in term.h
  // and the parser.
  static SymbolTable& Global();

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> ids_;
  uint64_t fresh_counter_ = 0;
};

}  // namespace vbr

#endif  // VBR_CQ_SYMBOL_H_
