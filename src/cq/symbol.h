#ifndef VBR_CQ_SYMBOL_H_
#define VBR_CQ_SYMBOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace vbr {

// A Symbol is a dense integer id for an interned string (predicate name,
// variable name, or constant name).
using Symbol = int32_t;

inline constexpr Symbol kInvalidSymbol = -1;

// Interns strings to Symbols and back.
//
// The library routes all naming through SymbolTable::Global() so that terms
// and atoms are cheap value types (a Symbol plus a tag). The table only
// grows; Symbols are never invalidated.
//
// Thread safety: every method may be called concurrently from any number of
// threads (the parallel rewrite pipeline interns fresh variables from pool
// workers). The name->id map is sharded under std::shared_mutex, so Intern
// of an already-known name takes one shared lock on one shard. Resolving an
// id back to its string (NameOf) is LOCK-FREE: names live in chunked,
// append-only storage whose entries never move, published with a
// release-store of the table size, so any Symbol a thread legitimately holds
// resolves without synchronization.
//
// Determinism: ids reflect global interning order. Single-threaded runs
// therefore assign exactly the ids the pre-threading implementation did;
// under concurrency ids depend on the interleaving, which is why the
// pipeline's determinism contract (see DESIGN.md "Threading model") is
// stated over query structure, not over fresh-name spellings.
class SymbolTable {
 public:
  SymbolTable();
  ~SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the id for `name`, interning it on first use.
  Symbol Intern(std::string_view name);

  // Returns the id for `name` if already interned, kInvalidSymbol otherwise.
  Symbol Find(std::string_view name) const;

  // Returns the string for an id. `sym` must have been produced by this
  // table. Lock-free.
  const std::string& NameOf(Symbol sym) const;

  // Interns and returns a name of the form "<prefix>$<n>" that was not
  // previously interned. Used to create fresh variables during expansion.
  // Concurrent callers always receive distinct symbols.
  Symbol Fresh(std::string_view prefix);

  // Number of interned names. Any id < size() is resolvable via NameOf.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  // The process-wide table used by the convenience constructors in term.h
  // and the parser.
  static SymbolTable& Global();

 private:
  // Geometric chunked storage: chunk c holds 2^c * kChunkBase names, so the
  // inline spine of kNumChunks pointers covers every id a 31-bit Symbol can
  // express while existing entries never reallocate (that is what makes
  // NameOf lock-free).
  static constexpr size_t kChunkBase = 1024;
  static constexpr size_t kNumChunks = 22;

  // Shard count for the name->id map; must be a power of two.
  static constexpr size_t kNumShards = 16;

  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, Symbol, StringHash, std::equal_to<>> ids;
  };

  Shard& ShardOf(std::string_view name) const;

  // Appends `name` to the chunked storage and publishes the new size.
  // Callers hold the unique lock of the owning shard (which serializes
  // same-name races); distinct names racing here are serialized by
  // names_mu_.
  Symbol AppendName(std::string_view name);

  mutable Shard shards_[kNumShards];

  std::mutex names_mu_;  // guards chunk allocation and appends
  std::atomic<std::string*> chunks_[kNumChunks] = {};
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> fresh_counter_{0};
};

}  // namespace vbr

#endif  // VBR_CQ_SYMBOL_H_
