#include "cq/atom.h"

#include <unordered_set>
#include <utility>

#include "common/check.h"

namespace vbr {

namespace {

// Lazily interned ids of the comparison predicates.
const std::unordered_set<Symbol>& BuiltinPredicateIds() {
  static const std::unordered_set<Symbol>* ids = [] {
    auto* s = new std::unordered_set<Symbol>;
    for (const char* name : {"<", "<=", ">", ">=", "!="}) {
      s->insert(SymbolTable::Global().Intern(name));
    }
    return s;
  }();
  return *ids;
}

}  // namespace

Atom::Atom(Symbol predicate, std::vector<Term> args)
    : predicate_(predicate), args_(std::move(args)) {}

Atom::Atom(std::string_view predicate, std::initializer_list<Term> args)
    : predicate_(SymbolTable::Global().Intern(predicate)), args_(args) {}

Atom::Atom(std::string_view predicate, std::vector<Term> args)
    : predicate_(SymbolTable::Global().Intern(predicate)),
      args_(std::move(args)) {}

const std::string& Atom::predicate_name() const {
  return SymbolTable::Global().NameOf(predicate_);
}

Term Atom::arg(size_t i) const {
  VBR_DCHECK(i < args_.size());
  return args_[i];
}

bool Atom::is_builtin() const { return IsBuiltinPredicate(predicate_); }

void Atom::AppendVariables(std::vector<Term>* out) const {
  for (Term t : args_) {
    if (t.is_variable()) out->push_back(t);
  }
}

bool Atom::Mentions(Term t) const {
  for (Term a : args_) {
    if (a == t) return true;
  }
  return false;
}

std::string Atom::ToString() const {
  // Builtins print infix ("X <= Y"), matching the only syntax the parser
  // accepts for them — ToString() must re-parse (the fuzz harness checks
  // the round trip).
  if (is_builtin() && args_.size() == 2) {
    return args_[0].ToString() + " " + predicate_name() + " " +
           args_[1].ToString();
  }
  std::string s = predicate_name();
  s += "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) s += ",";
    s += args_[i].ToString();
  }
  s += ")";
  return s;
}

size_t AtomHash::operator()(const Atom& a) const {
  size_t h = std::hash<int32_t>()(a.predicate());
  for (Term t : a.args()) {
    h = h * 1315423911u + TermHash()(t);
  }
  return h;
}

bool IsBuiltinPredicate(Symbol predicate) {
  return BuiltinPredicateIds().count(predicate) > 0;
}

std::vector<Term> CollectVariables(const std::vector<Atom>& atoms) {
  std::vector<Term> result;
  std::unordered_set<Term, TermHash> seen;
  for (const Atom& a : atoms) {
    for (Term t : a.args()) {
      if (t.is_variable() && seen.insert(t).second) result.push_back(t);
    }
  }
  return result;
}

std::vector<Term> CollectTerms(const std::vector<Atom>& atoms) {
  std::vector<Term> result;
  std::unordered_set<Term, TermHash> seen;
  for (const Atom& a : atoms) {
    for (Term t : a.args()) {
      if (seen.insert(t).second) result.push_back(t);
    }
  }
  return result;
}

std::string AtomsToString(const std::vector<Atom>& atoms) {
  std::string s;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) s += ", ";
    s += atoms[i].ToString();
  }
  return s;
}

}  // namespace vbr
