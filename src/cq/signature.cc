#include "cq/signature.h"

namespace vbr {

AtomSignature ComputeAtomSignature(const Atom& a) {
  AtomSignature sig;
  sig.predicate = a.predicate();
  sig.arity = static_cast<uint32_t>(a.arity());
  const std::vector<Term>& args = a.args();
  for (size_t i = 0; i < args.size(); ++i) {
    const Term t = args[i];
    bool seen = false;
    for (size_t j = 0; j < i; ++j) {
      if (args[j] == t) {
        seen = true;
        break;
      }
    }
    if (!seen) ++sig.num_distinct;
    if (t.is_constant()) {
      if (i < 64) sig.const_positions |= uint64_t{1} << i;
      sig.const_bloom |= SymbolBloomBit(t.symbol());
    }
  }
  return sig;
}

bool AtomMayMapOnto(const Atom& source, const Atom& target) {
  if (source.predicate() != target.predicate() ||
      source.arity() != target.arity()) {
    return false;
  }
  const std::vector<Term>& s = source.args();
  const std::vector<Term>& t = target.args();
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i].is_constant()) {
      if (s[i] != t[i]) return false;
      continue;
    }
    // s[i] is a variable: its image is forced to t[i]; consistency with the
    // variable's earlier occurrences is the only constraint.
    for (size_t j = 0; j < i; ++j) {
      if (s[j] == s[i]) {
        if (t[j] != t[i]) return false;
        break;
      }
    }
  }
  return true;
}

QuerySignature ComputeQuerySignature(const ConjunctiveQuery& q) {
  QuerySignature sig;
  sig.head_arity = static_cast<uint32_t>(q.head().arity());
  sig.num_subgoals = static_cast<uint32_t>(q.num_subgoals());
  for (const Atom& a : q.body()) {
    sig.predicate_bloom |= SymbolBloomBit(a.predicate());
    for (Term t : a.args()) {
      if (t.is_constant()) sig.constant_bloom |= SymbolBloomBit(t.symbol());
    }
  }
  return sig;
}

}  // namespace vbr
