#include "cq/substitution.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace vbr {

bool Substitution::Bind(Term var, Term target) {
  VBR_DCHECK(var.is_variable());
  auto [it, inserted] = map_.emplace(var.symbol(), target);
  return inserted || it->second == target;
}

void Substitution::Unbind(Term var) { map_.erase(var.symbol()); }

std::optional<Term> Substitution::Lookup(Term var) const {
  auto it = map_.find(var.symbol());
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

Term Substitution::Apply(Term t) const {
  if (!t.is_variable()) return t;
  auto it = map_.find(t.symbol());
  return it == map_.end() ? t : it->second;
}

Atom Substitution::Apply(const Atom& atom) const {
  std::vector<Term> args;
  args.reserve(atom.arity());
  for (Term t : atom.args()) args.push_back(Apply(t));
  return Atom(atom.predicate(), std::move(args));
}

std::vector<Atom> Substitution::Apply(const std::vector<Atom>& atoms) const {
  std::vector<Atom> result;
  result.reserve(atoms.size());
  for (const Atom& a : atoms) result.push_back(Apply(a));
  return result;
}

ConjunctiveQuery Substitution::Apply(const ConjunctiveQuery& query) const {
  return ConjunctiveQuery(Apply(query.head()), Apply(query.body()));
}

bool Substitution::IsInjective() const {
  std::unordered_set<Term, TermHash> images;
  for (const auto& [var, target] : map_) {
    if (!images.insert(target).second) return false;
  }
  return true;
}

std::string Substitution::ToString() const {
  // Sort by variable name for deterministic output.
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(map_.size());
  for (const auto& [var, target] : map_) {
    entries.emplace_back(SymbolTable::Global().NameOf(var),
                         target.ToString());
  }
  std::sort(entries.begin(), entries.end());
  std::string s = "{";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) s += ", ";
    s += entries[i].first + " -> " + entries[i].second;
  }
  s += "}";
  return s;
}

}  // namespace vbr
