#ifndef VBR_CQ_FINGERPRINT_H_
#define VBR_CQ_FINGERPRINT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "cq/query.h"
#include "cq/substitution.h"

namespace vbr {

// Canonical fingerprints for conjunctive queries.
//
// Two queries that differ only by a variable renaming and/or a reordering of
// body subgoals denote the same mapping from databases to answers, and a
// plan cache should serve both from one entry. CanonicalizeQuery computes a
// renaming- and reordering-invariant canonical form:
//
//   1. minimize the query to its core (redundant subgoals would otherwise
//      perturb the form; equivalent-up-to-redundancy queries also collapse),
//   2. run iterative color refinement over the atom/variable incidence
//      graph: a variable's color is refined by the multiset of
//      (atom color, argument position) pairs it occurs at, an atom's color
//      by its predicate and per-position argument colors,
//   3. break remaining symmetric ties by individualization-refinement,
//      taking the lexicographically least serialization over all tie-break
//      choices (exact canonical labeling; a branch budget guards against
//      pathological symmetry — if exceeded, the labeling is still
//      deterministic for this input but no longer canonical, and the
//      fingerprint is marked !exact so consumers fall back to
//      FindIsomorphism for equality),
//   4. rename variables to @0, @1, ... in label order, sort the body
//      serialization, and hash the result.
//
// Constants and predicate names are preserved verbatim (a renaming maps
// variables only), and head argument order matters: q(X,Y) and q(Y,X) over
// the same body fingerprint differently.
//
// Queries with builtin comparison subgoals are canonicalized without the
// minimization step (Minimize requires comparison-free queries); renaming /
// reordering invariance still holds for them.

struct QueryFingerprint {
  // 64-bit FNV-1a digest of `canonical`. Equal canonical strings imply
  // equal hashes; distinct canonical strings collide with probability
  // ~2^-64 (collisions are handled by comparing `canonical`).
  uint64_t hash = 0;
  // The canonical serialization. Two queries with equal EXACT canonical
  // strings are isomorphic (identical after the canonical renaming);
  // conversely, isomorphic queries receive equal strings whenever both
  // labelings completed within budget.
  std::string canonical;
  // True if the canonical labeling ran to completion. When false, unequal
  // strings do not prove non-isomorphism: compare with FindIsomorphism.
  bool exact = true;

  friend bool operator==(const QueryFingerprint&,
                         const QueryFingerprint&) = default;
};

// A query together with its canonical form and the variable mappings
// between the two, as needed to transport cached artifacts.
struct CanonicalQuery {
  QueryFingerprint fingerprint;
  // The minimized core of the input, in the input's own variable names
  // (the input itself when it contains builtins).
  ConjunctiveQuery minimized;
  // Bijection vars(minimized) -> canonical variables @0..@k-1.
  Substitution to_canonical;
  // The inverse bijection.
  Substitution from_canonical;
  // False when the resource governor cut minimization short: `minimized` is
  // equivalent to the input but possibly NOT its core, so the canonical
  // form must not be used as a cache key for the equivalence class (two
  // equivalent queries may canonicalize differently). fingerprint.exact is
  // forced off in that case.
  bool minimize_complete = true;
};

// Canonicalizes `query` (minimization + color refinement + canonical
// labeling). Deterministic: identical inputs always produce identical
// output, and renamed/reordered inputs produce equal fingerprints whenever
// `fingerprint.exact` holds (always, in practice).
CanonicalQuery CanonicalizeQuery(const ConjunctiveQuery& query);

// Convenience: just the fingerprint.
QueryFingerprint CanonicalFingerprint(const ConjunctiveQuery& query);

// Searches for a query isomorphism from `a` onto `b`: a bijective
// variable-to-variable renaming h with h(head(a)) = head(b) (same head
// predicate, arguments positionally equal after renaming) and
// h(body(a)) = body(b) as sets. Constants must match verbatim. Returns the
// renaming, or nullopt if the queries are not isomorphic. Deterministic.
std::optional<Substitution> FindIsomorphism(const ConjunctiveQuery& a,
                                            const ConjunctiveQuery& b);

// True if FindIsomorphism succeeds.
bool Isomorphic(const ConjunctiveQuery& a, const ConjunctiveQuery& b);

}  // namespace vbr

#endif  // VBR_CQ_FINGERPRINT_H_
