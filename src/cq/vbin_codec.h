// VBIN value codecs for the CQ core types.
//
// Symbols are process-local interned ids, so the wire form stores NAMES
// through the file's string pool and re-interns on decode — decoding in a
// different process yields terms that compare equal to the originals.
//
// Encoding is deterministic: pool ids are assigned in traversal order and
// Substitution bindings are sorted by variable name, so
// encode(decode(bytes)) == bytes for every well-formed file (the
// round-trip identity the differential harness asserts).
#ifndef VBR_CQ_VBIN_CODEC_H_
#define VBR_CQ_VBIN_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/vbin.h"
#include "cq/atom.h"
#include "cq/query.h"
#include "cq/substitution.h"
#include "cq/term.h"

namespace vbr {

// -- Body-level codecs (composable inside larger files) ---------------------
//
// Encoders append to the writer's body; decoders consume from `reader`
// (which reads the enclosing body section) resolving names via `file`.
// Decoders return false after latching an error on the reader.

void EncodeTerm(const Term& term, vbin::FileWriter* writer);
bool DecodeTerm(vbin::Reader* reader, const vbin::FileView& file, Term* out);

void EncodeAtom(const Atom& atom, vbin::FileWriter* writer);
bool DecodeAtom(vbin::Reader* reader, const vbin::FileView& file, Atom* out);

void EncodeQuery(const ConjunctiveQuery& query, vbin::FileWriter* writer);
bool DecodeQuery(vbin::Reader* reader, const vbin::FileView& file,
                 ConjunctiveQuery* out);

void EncodeAtoms(const std::vector<Atom>& atoms, vbin::FileWriter* writer);
bool DecodeAtoms(vbin::Reader* reader, const vbin::FileView& file,
                 std::vector<Atom>* out);

void EncodeQueries(const std::vector<ConjunctiveQuery>& queries,
                   vbin::FileWriter* writer);
bool DecodeQueries(vbin::Reader* reader, const vbin::FileView& file,
                   std::vector<ConjunctiveQuery>* out);

void EncodeSubstitution(const Substitution& subst, vbin::FileWriter* writer);
bool DecodeSubstitution(vbin::Reader* reader, const vbin::FileView& file,
                        Substitution* out);

// -- Whole-file conveniences -------------------------------------------------

// kQuery file: one ConjunctiveQuery.
std::string EncodeQueryFile(const ConjunctiveQuery& query);
vbin::Status DecodeQueryFile(std::string_view bytes, ConjunctiveQuery* out);

// kProgram file: an ordered rule list (view sets, workloads).
std::string EncodeProgramFile(const std::vector<ConjunctiveQuery>& rules);
vbin::Status DecodeProgramFile(std::string_view bytes,
                               std::vector<ConjunctiveQuery>* out);

}  // namespace vbr

#endif  // VBR_CQ_VBIN_CODEC_H_
