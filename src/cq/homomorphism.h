#ifndef VBR_CQ_HOMOMORPHISM_H_
#define VBR_CQ_HOMOMORPHISM_H_

#include <functional>
#include <optional>
#include <vector>

#include "cq/atom.h"
#include "cq/substitution.h"

namespace vbr {

// Homomorphism search between atom lists.
//
// A homomorphism from `from` into `to` is a substitution h on the variables
// of `from` such that h(a) appears in `to` for every atom a of `from`
// (constants map to themselves). This is the workhorse behind containment
// mappings (Chandra & Merlin), canonical-database evaluation, and the
// tuple-core computation.
//
// Builtin comparison atoms are not supported here; callers must strip them
// first (VBR_CHECKed).

// Returns a homomorphism extending `seed`, or nullopt if none exists.
std::optional<Substitution> FindHomomorphism(const std::vector<Atom>& from,
                                             const std::vector<Atom>& to,
                                             const Substitution& seed = {});

// Invokes `callback` for every homomorphism from `from` into `to` extending
// `seed`. The callback may return false to stop the enumeration early.
// Returns true if the enumeration ran to completion (i.e., was not stopped).
//
// The same total assignment can be reported once per distinct choice of
// target atoms only when two identical atoms occur in `to`; `to` lists with
// duplicate atoms therefore may repeat callbacks. Deduplicate in the caller
// if that matters (the library's `to` lists are duplicate-free).
bool ForEachHomomorphism(
    const std::vector<Atom>& from, const std::vector<Atom>& to,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& callback);

}  // namespace vbr

#endif  // VBR_CQ_HOMOMORPHISM_H_
