#ifndef VBR_CQ_HOMOMORPHISM_H_
#define VBR_CQ_HOMOMORPHISM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "cq/atom.h"
#include "cq/signature.h"
#include "cq/substitution.h"

namespace vbr {

// Homomorphism search between atom lists.
//
// A homomorphism from `from` into `to` is a substitution h on the variables
// of `from` such that h(a) appears in `to` for every atom a of `from`
// (constants map to themselves). This is the workhorse behind containment
// mappings (Chandra & Merlin), canonical-database evaluation, and the
// tuple-core computation.
//
// Builtin comparison atoms are not supported here; callers must strip them
// first (VBR_CHECKed).

// Flat, sorted index over a target atom list, built once and shared across
// any number of searches into the same target (Minimize probes the same body
// n times per round; view-tuple computation matches every view against one
// canonical database). Entries are grouped by (predicate, arity) with the
// ORIGINAL list order preserved inside each group, so an indexed search
// enumerates candidates — and therefore reports homomorphisms — in exactly
// the order the unindexed search over the plain list does. Each entry
// carries the atom's precomputed signature for O(1) candidate prefiltering.
//
// The index stores pointers into the vector it was built from; that vector
// must outlive the index.
class AtomIndex {
 public:
  struct Entry {
    const Atom* atom = nullptr;
    // Position of the atom in the source vector (drives `exclude_mask`).
    uint32_t position = 0;
    AtomSignature sig;
  };

  AtomIndex() = default;
  explicit AtomIndex(const std::vector<Atom>& atoms);

  // Half-open [first, last) range into entries() holding every atom with
  // this predicate and arity, in original list order.
  std::pair<uint32_t, uint32_t> Bucket(Symbol predicate, uint32_t arity) const;

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  // Index into entries() of the atom at `position` of the source vector.
  uint32_t EntryOfPosition(uint32_t position) const {
    return entry_of_position_[position];
  }

 private:
  struct Group {
    Symbol predicate = kInvalidSymbol;
    uint32_t arity = 0;
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  std::vector<Group> groups_;  // sorted by (predicate, arity)
  std::vector<Entry> entries_;
  std::vector<uint32_t> entry_of_position_;
};

// Precomputed matching tables for repeated searches of the same `from` list
// into the same indexed target under the same seed, varying only the set of
// excluded target atoms (Minimize probes n single-subgoal removals per
// round). Building a plan runs the per-(from-atom, candidate) prefilter and
// the atom ordering once; each search then starts from a bitmask copy
// instead of redoing that work. The plan borrows `from`, `to`, and nothing
// else; both must outlive it.
class MatchPlan {
 public:
  struct PerAtom {
    AtomSignature sig;
    uint32_t bucket_begin = 0;
    uint32_t bucket_end = 0;
    // Bucket-local candidate bitmask (valid when the bucket has <= 64
    // entries): bit k set when entry bucket_begin + k passed the single-atom
    // mappability check. Oversized buckets filter per search step instead.
    uint64_t mask = 0;
    // Number of candidates passing the signature filter (drives ordering).
    size_t count = 0;
  };

  MatchPlan(const std::vector<Atom>& from, const AtomIndex& to,
            Substitution seed);

  const std::vector<Atom>& from() const { return *from_; }
  const AtomIndex& index() const { return *index_; }
  const Substitution& seed() const { return seed_; }
  const std::vector<PerAtom>& atoms() const { return atoms_; }
  const std::vector<size_t>& order() const { return order_; }
  // True when some `from` atom has no viable candidate at all: no search
  // under ANY exclude mask can succeed, and that verdict is complete.
  bool hopeless() const { return hopeless_; }

 private:
  const std::vector<Atom>* from_;
  const AtomIndex* index_;
  Substitution seed_;
  std::vector<PerAtom> atoms_;
  std::vector<size_t> order_;
  bool hopeless_ = false;
};

// Returns a homomorphism extending `seed`, or nullopt if none exists.
std::optional<Substitution> FindHomomorphism(const std::vector<Atom>& from,
                                             const std::vector<Atom>& to,
                                             const Substitution& seed = {});

// As above over a prebuilt index.
std::optional<Substitution> FindHomomorphism(const std::vector<Atom>& from,
                                             const AtomIndex& to,
                                             const Substitution& seed = {});

// Invokes `callback` for every homomorphism from `from` into `to` extending
// `seed`. The callback may return false to stop the enumeration early.
// Returns true if the enumeration ran to completion (i.e., was not stopped
// by the callback and not aborted by the resource governor).
//
// The same total assignment can be reported once per distinct choice of
// target atoms only when two identical atoms occur in `to`; `to` lists with
// duplicate atoms therefore may repeat callbacks. Deduplicate in the caller
// if that matters (the library's `to` lists are duplicate-free).
bool ForEachHomomorphism(
    const std::vector<Atom>& from, const std::vector<Atom>& to,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& callback);

// Indexed enumeration. Target atoms whose position is below 64 and whose bit
// is set in `exclude_mask` are skipped, which lets Minimize probe "body
// minus subgoal i" against one shared index instead of materializing n
// subqueries. If `aborted` is non-null it is set to whether the resource
// governor cut the search short — a search that reports no homomorphism AND
// *aborted == true proves nothing (exhaustion is NOT "no mapping"; see the
// containment layer's completeness plumbing).
bool ForEachHomomorphism(
    const std::vector<Atom>& from, const AtomIndex& to,
    const Substitution& seed,
    const std::function<bool(const Substitution&)>& callback,
    uint64_t exclude_mask = 0, bool* aborted = nullptr);

// Enumeration over a prebuilt plan (from, target, and seed are the plan's).
bool ForEachHomomorphism(
    const MatchPlan& plan,
    const std::function<bool(const Substitution&)>& callback,
    uint64_t exclude_mask = 0, bool* aborted = nullptr);

}  // namespace vbr

#endif  // VBR_CQ_HOMOMORPHISM_H_
