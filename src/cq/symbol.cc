#include "cq/symbol.h"

#include <string>

#include "common/check.h"

namespace vbr {

Symbol SymbolTable::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const Symbol id = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

Symbol SymbolTable::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kInvalidSymbol : it->second;
}

const std::string& SymbolTable::NameOf(Symbol sym) const {
  VBR_CHECK(sym >= 0 && static_cast<size_t>(sym) < names_.size());
  return names_[static_cast<size_t>(sym)];
}

Symbol SymbolTable::Fresh(std::string_view prefix) {
  while (true) {
    std::string candidate =
        std::string(prefix) + "$" + std::to_string(fresh_counter_++);
    if (ids_.find(candidate) == ids_.end()) return Intern(candidate);
  }
}

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable;
  return *table;
}

}  // namespace vbr
