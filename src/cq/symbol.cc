#include "cq/symbol.h"

#include <bit>
#include <mutex>
#include <string>

#include "common/check.h"

namespace vbr {

namespace {

// Position of id `i` in the geometric chunk layout: chunk c covers ids
// [(2^c - 1) * kChunkBase, (2^(c+1) - 1) * kChunkBase) and holds
// 2^c * kChunkBase entries.
struct ChunkPos {
  size_t chunk;
  size_t offset;
};

ChunkPos PosOf(size_t id, size_t chunk_base) {
  const size_t q = id / chunk_base + 1;  // >= 1
  const size_t c = std::bit_width(q) - 1;
  const size_t start = ((size_t{1} << c) - 1) * chunk_base;
  return {c, id - start};
}

size_t ChunkCapacity(size_t chunk, size_t chunk_base) {
  return (size_t{1} << chunk) * chunk_base;
}

}  // namespace

SymbolTable::SymbolTable() = default;

SymbolTable::~SymbolTable() {
  for (std::atomic<std::string*>& chunk : chunks_) {
    delete[] chunk.load(std::memory_order_relaxed);
  }
}

SymbolTable::Shard& SymbolTable::ShardOf(std::string_view name) const {
  return shards_[std::hash<std::string_view>()(name) & (kNumShards - 1)];
}

Symbol SymbolTable::AppendName(std::string_view name) {
  std::lock_guard<std::mutex> lock(names_mu_);
  const size_t id = size_.load(std::memory_order_relaxed);
  const ChunkPos pos = PosOf(id, kChunkBase);
  VBR_CHECK_MSG(pos.chunk < kNumChunks, "symbol table capacity exhausted");
  std::string* chunk = chunks_[pos.chunk].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new std::string[ChunkCapacity(pos.chunk, kChunkBase)];
    chunks_[pos.chunk].store(chunk, std::memory_order_release);
  }
  chunk[pos.offset] = std::string(name);
  size_.store(id + 1, std::memory_order_release);
  return static_cast<Symbol>(id);
}

Symbol SymbolTable::Intern(std::string_view name) {
  Shard& shard = ShardOf(name);
  {
    std::shared_lock<std::shared_mutex> read(shard.mu);
    auto it = shard.ids.find(name);
    if (it != shard.ids.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> write(shard.mu);
  auto it = shard.ids.find(name);
  if (it != shard.ids.end()) return it->second;
  const Symbol id = AppendName(name);
  shard.ids.emplace(std::string(name), id);
  return id;
}

Symbol SymbolTable::Find(std::string_view name) const {
  const Shard& shard = ShardOf(name);
  std::shared_lock<std::shared_mutex> read(shard.mu);
  auto it = shard.ids.find(name);
  return it == shard.ids.end() ? kInvalidSymbol : it->second;
}

const std::string& SymbolTable::NameOf(Symbol sym) const {
  VBR_CHECK(sym >= 0 && static_cast<size_t>(sym) <
                            size_.load(std::memory_order_acquire));
  const ChunkPos pos = PosOf(static_cast<size_t>(sym), kChunkBase);
  const std::string* chunk = chunks_[pos.chunk].load(std::memory_order_acquire);
  return chunk[pos.offset];
}

Symbol SymbolTable::Fresh(std::string_view prefix) {
  while (true) {
    const uint64_t n = fresh_counter_.fetch_add(1, std::memory_order_relaxed);
    const std::string candidate =
        std::string(prefix) + "$" + std::to_string(n);
    Shard& shard = ShardOf(candidate);
    std::unique_lock<std::shared_mutex> write(shard.mu);
    if (shard.ids.find(candidate) != shard.ids.end()) continue;
    const Symbol id = AppendName(candidate);
    shard.ids.emplace(candidate, id);
    return id;
  }
}

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable;
  return *table;
}

}  // namespace vbr
