#include "cq/term.h"

#include <cctype>

namespace vbr {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool AllIdentChars(std::string_view name) {
  for (char c : name) {
    if (!IsIdentChar(c)) return false;
  }
  return true;
}

// Would the lexer read `name` back as a variable identifier?
bool IsConventionalVariable(std::string_view name) {
  if (name.empty()) return false;
  const unsigned char first = static_cast<unsigned char>(name[0]);
  return (std::isupper(first) || name[0] == '_') && AllIdentChars(name);
}

// Would the lexer read `name` back as a single constant token?  Lowercase
// identifiers, digit runs, and '-'-prefixed digit runs do; anything else
// (uppercase start, spaces, operators, a digit start with letters after)
// would mis-lex or mis-kind.
bool IsConventionalConstant(std::string_view name) {
  if (name.empty()) return false;
  const unsigned char first = static_cast<unsigned char>(name[0]);
  if (std::islower(first)) return AllIdentChars(name);
  if (std::isdigit(first) || name[0] == '-') {
    for (size_t i = 1; i < name.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
    }
    return true;
  }
  return false;
}

std::string Quote(std::string_view name) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(name.size() + 2);
  out.push_back('"');
  for (char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20 || u == 0x7F) {
      out += "\\x";
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string FormatTermText(std::string_view name, bool is_variable) {
  if (is_variable) {
    if (IsConventionalVariable(name)) return std::string(name);
    if (!name.empty() && AllIdentChars(name)) return "?" + std::string(name);
    return "?" + Quote(name);
  }
  if (IsConventionalConstant(name)) return std::string(name);
  return Quote(name);
}

}  // namespace vbr
