#ifndef VBR_CQ_QUERY_H_
#define VBR_CQ_QUERY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "cq/atom.h"
#include "cq/term.h"

namespace vbr {

// A conjunctive (select-project-join) query
//
//     h(X1,...,Xm) :- g1(Y1), ..., gk(Yk)
//
// The head arguments may be variables or constants; a variable is
// "distinguished" if it appears in the head. A query is "safe" if every head
// variable appears in some non-builtin body atom.
//
// A view is a ConjunctiveQuery whose head predicate names the view relation,
// so `View` is an alias below.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(Atom head, std::vector<Atom> body);

  const Atom& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }
  size_t num_subgoals() const { return body_.size(); }
  const Atom& subgoal(size_t i) const;

  // Distinct body variables in first-occurrence order (head-only variables
  // never exist in safe queries).
  std::vector<Term> Variables() const;

  // Distinct head variables in first-occurrence order.
  std::vector<Term> DistinguishedVariables() const;

  // Distinct body variables that do not appear in the head.
  std::vector<Term> ExistentialVariables() const;

  bool IsDistinguished(Term t) const;

  // Every head variable appears in a non-builtin body atom.
  bool IsSafe() const;

  // True if any body atom uses a comparison predicate.
  bool HasBuiltins() const;

  // Copy of this query with body atom `index` removed.
  ConjunctiveQuery WithoutSubgoal(size_t index) const;

  // Copy of this query with body atoms at positions in `keep` (in the given
  // order).
  ConjunctiveQuery WithSubgoals(const std::vector<size_t>& keep) const;

  // Copy with the same head and a new body.
  ConjunctiveQuery WithBody(std::vector<Atom> body) const;

  // "h(X,Y) :- g1(X,Z), g2(Z,Y)"
  std::string ToString() const;

  friend bool operator==(const ConjunctiveQuery& a,
                         const ConjunctiveQuery& b) = default;

 private:
  Atom head_;
  std::vector<Atom> body_;
};

// A view definition over the base relations. The head predicate is the view
// name; materializing the view stores its answer under that predicate.
using View = ConjunctiveQuery;
using ViewSet = std::vector<View>;

}  // namespace vbr

#endif  // VBR_CQ_QUERY_H_
