#include "cq/fingerprint.h"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cq/containment.h"

namespace vbr {

namespace {

// Branch budget for the individualization-refinement search. Each node of
// the search tree costs one unit; 8-subgoal workload queries use a handful.
constexpr size_t kLabelingBudget = 4096;

inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t Combine(uint64_t seed, uint64_t v) {
  return Mix(seed ^ (v + 0x2545f4914f6cdd1dULL));
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Canonical labeling of one (minimized) query by color refinement with
// individualization-refinement tie-breaking.
class Canonizer {
 public:
  explicit Canonizer(const ConjunctiveQuery& q) : q_(q) {
    // Distinct variables, defensively including head-only ones.
    std::vector<Atom> all = q.body();
    all.push_back(q.head());
    vars_ = CollectVariables(all);
    for (size_t i = 0; i < vars_.size(); ++i) {
      index_[vars_[i].symbol()] = i;
    }
    occurrences_.resize(vars_.size());
    for (size_t a = 0; a < q.body().size(); ++a) {
      const Atom& atom = q.body()[a];
      for (size_t p = 0; p < atom.arity(); ++p) {
        if (atom.arg(p).is_variable()) {
          occurrences_[index_[atom.arg(p).symbol()]].emplace_back(a, p);
        }
      }
    }
  }

  // Runs the search. Returns the canonical serialization; `out_ranks`
  // receives the winning label (rank) per variable, `out_exact` whether the
  // search completed within budget.
  std::string Run(std::vector<size_t>* out_ranks, bool* out_exact) {
    std::vector<uint64_t> colors(vars_.size());
    // Initial colors: the set of head positions the variable occupies
    // (order-invariant structural information that a renaming preserves).
    for (size_t i = 0; i < vars_.size(); ++i) {
      uint64_t sig = 0x5bf03635;
      const Atom& head = q_.head();
      for (size_t p = 0; p < head.arity(); ++p) {
        if (head.arg(p) == vars_[i]) sig = Combine(sig, p + 1);
      }
      colors[i] = sig;
    }
    Densify(&colors);
    budget_ = kLabelingBudget;
    exact_ = true;
    best_.clear();
    Search(std::move(colors));
    *out_ranks = best_ranks_;
    *out_exact = exact_;
    return best_;
  }

 private:
  // Replaces arbitrary color values by dense ranks 0..k-1 in increasing
  // color order. Rank assignment depends only on the multiset of colors, so
  // isomorphic queries densify identically.
  static void Densify(std::vector<uint64_t>* colors) {
    std::vector<uint64_t> sorted(*colors);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (uint64_t& c : *colors) {
      c = static_cast<uint64_t>(
          std::lower_bound(sorted.begin(), sorted.end(), c) - sorted.begin());
    }
  }

  static size_t CountClasses(const std::vector<uint64_t>& colors) {
    size_t max_rank = 0;
    for (uint64_t c : colors) max_rank = std::max<size_t>(max_rank, c + 1);
    return max_rank;
  }

  // One refinement round; returns the number of classes after it.
  size_t RefineOnce(std::vector<uint64_t>* colors) const {
    // Atom colors from predicate + per-position argument colors.
    std::vector<uint64_t> atom_color(q_.body().size());
    for (size_t a = 0; a < q_.body().size(); ++a) {
      const Atom& atom = q_.body()[a];
      uint64_t sig = Combine(0x61f0, static_cast<uint64_t>(atom.predicate()));
      for (size_t p = 0; p < atom.arity(); ++p) {
        const Term t = atom.arg(p);
        sig = t.is_variable()
                  ? Combine(sig, Combine(0x7a, (*colors)[index_.at(t.symbol())]))
                  : Combine(sig, Combine(0xc0, static_cast<uint64_t>(t.symbol())));
      }
      atom_color[a] = sig;
    }
    // Variable colors from the multiset of (atom color, position) incidences.
    std::vector<uint64_t> next(colors->size());
    for (size_t i = 0; i < vars_.size(); ++i) {
      std::vector<uint64_t> inc;
      inc.reserve(occurrences_[i].size());
      for (const auto& [a, p] : occurrences_[i]) {
        inc.push_back(Combine(atom_color[a], p + 1));
      }
      std::sort(inc.begin(), inc.end());
      uint64_t sig = Combine(0x11d7, (*colors)[i]);
      for (uint64_t v : inc) sig = Combine(sig, v);
      next[i] = sig;
    }
    Densify(&next);
    *colors = std::move(next);
    return CountClasses(*colors);
  }

  void RefineToStable(std::vector<uint64_t>* colors) const {
    Densify(colors);  // individualized children arrive non-dense
    size_t classes = CountClasses(*colors);
    while (classes < vars_.size()) {
      const size_t refined = RefineOnce(colors);
      if (refined == classes) break;
      classes = refined;
    }
  }

  // First (lowest-rank) color class with more than one member, or npos.
  static size_t FirstAmbiguousClass(const std::vector<uint64_t>& colors) {
    std::vector<size_t> count;
    for (uint64_t c : colors) {
      if (c >= count.size()) count.resize(c + 1, 0);
      ++count[c];
    }
    for (size_t r = 0; r < count.size(); ++r) {
      if (count[r] > 1) return r;
    }
    return static_cast<size_t>(-1);
  }

  void Search(std::vector<uint64_t> colors) {
    RefineToStable(&colors);
    const size_t ambiguous = FirstAmbiguousClass(colors);
    if (ambiguous == static_cast<size_t>(-1)) {
      std::string s = Serialize(colors);
      if (best_.empty() || s < best_) {
        best_ = std::move(s);
        best_ranks_.assign(colors.begin(), colors.end());
      }
      return;
    }
    const uint64_t fresh = vars_.size();  // distinct from every dense rank
    if (budget_ == 0) {
      // Budget exhausted: individualize the first member in input order.
      // Deterministic for this input, but input-order-dependent, so the
      // result is no longer canonical across renamings.
      exact_ = false;
      for (size_t i = 0; i < colors.size(); ++i) {
        if (colors[i] == ambiguous) {
          colors[i] = fresh;
          break;
        }
      }
      Search(std::move(colors));
      return;
    }
    for (size_t i = 0; i < colors.size(); ++i) {
      if (colors[i] != ambiguous) continue;
      if (budget_ == 0) {
        exact_ = false;  // remaining members of the class go unexplored
        break;
      }
      --budget_;
      std::vector<uint64_t> child(colors);
      child[i] = fresh;
      Search(std::move(child));
    }
  }

  std::string TermString(Term t, const std::vector<uint64_t>& ranks) const {
    if (t.is_constant()) return "c~" + t.ToString();
    return "@" + std::to_string(ranks[index_.at(t.symbol())]);
  }

  // Serialization under a discrete coloring: head verbatim (predicate and
  // argument order are significant), body atoms sorted (subgoal order is
  // not).
  std::string Serialize(const std::vector<uint64_t>& ranks) const {
    std::string head = q_.head().predicate_name();
    head += '(';
    for (size_t p = 0; p < q_.head().arity(); ++p) {
      if (p > 0) head += ',';
      head += TermString(q_.head().arg(p), ranks);
    }
    head += ')';
    std::vector<std::string> body;
    body.reserve(q_.body().size());
    for (const Atom& atom : q_.body()) {
      std::string s = atom.predicate_name();
      s += '(';
      for (size_t p = 0; p < atom.arity(); ++p) {
        if (p > 0) s += ',';
        s += TermString(atom.arg(p), ranks);
      }
      s += ')';
      body.push_back(std::move(s));
    }
    std::sort(body.begin(), body.end());
    std::string out = head;
    out += ":-";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) out += ',';
      out += body[i];
    }
    return out;
  }

  const ConjunctiveQuery& q_;
  std::vector<Term> vars_;
  std::unordered_map<Symbol, size_t> index_;
  std::vector<std::vector<std::pair<size_t, size_t>>> occurrences_;
  size_t budget_ = 0;
  bool exact_ = true;
  std::string best_;
  std::vector<size_t> best_ranks_;
};

}  // namespace

CanonicalQuery CanonicalizeQuery(const ConjunctiveQuery& query) {
  CanonicalQuery out;
  if (query.HasBuiltins()) {
    out.minimized = query;
  } else {
    out.minimized = Minimize(query, &out.minimize_complete);
  }
  Canonizer canonizer(out.minimized);
  std::vector<size_t> ranks;
  bool exact = true;
  out.fingerprint.canonical = canonizer.Run(&ranks, &exact);
  out.fingerprint.hash = Fnv1a(out.fingerprint.canonical);
  // An incomplete minimization labels a possibly non-minimal body: two
  // equivalent queries can then disagree on the canonical string, so the
  // fingerprint loses its exactness guarantee.
  out.fingerprint.exact = exact && out.minimize_complete;
  std::vector<Atom> all = out.minimized.body();
  all.push_back(out.minimized.head());
  const std::vector<Term> vars = CollectVariables(all);
  for (size_t i = 0; i < vars.size(); ++i) {
    const Term canonical = Var("@" + std::to_string(ranks[i]));
    out.to_canonical.Bind(vars[i], canonical);
    out.from_canonical.Bind(canonical, vars[i]);
  }
  return out;
}

QueryFingerprint CanonicalFingerprint(const ConjunctiveQuery& query) {
  return CanonicalizeQuery(query).fingerprint;
}

namespace {

// Backtracking state for the isomorphism search.
struct IsoState {
  Substitution map;                       // vars(a) -> vars(b)
  std::unordered_set<Symbol> used;        // images already taken
};

// Extends the bijection with s -> t. Returns 0 on failure, 1 if the pair
// was already bound (nothing to undo), 2 if a new binding was added.
int TryBind(IsoState* st, Term s, Term t) {
  if (s.is_constant()) return s == t ? 1 : 0;
  if (!t.is_variable()) return 0;
  if (auto bound = st->map.Lookup(s)) return *bound == t ? 1 : 0;
  if (st->used.count(t.symbol()) > 0) return 0;
  st->map.Bind(s, t);
  st->used.insert(t.symbol());
  return 2;
}

void Undo(IsoState* st, const std::vector<std::pair<Term, Term>>& added) {
  for (const auto& [s, t] : added) {
    st->map.Unbind(s);
    st->used.erase(t.symbol());
  }
}

// Binds the argument vectors positionally; appends new bindings to `added`
// so the caller can roll back.
bool BindArgs(IsoState* st, const Atom& a, const Atom& b,
              std::vector<std::pair<Term, Term>>* added) {
  for (size_t p = 0; p < a.arity(); ++p) {
    const int r = TryBind(st, a.arg(p), b.arg(p));
    if (r == 0) return false;
    if (r == 2) added->emplace_back(a.arg(p), b.arg(p));
  }
  return true;
}

bool MatchBodies(IsoState* st, const std::vector<Atom>& a,
                 const std::vector<Atom>& b, std::vector<bool>* used_b,
                 size_t i) {
  if (i == a.size()) return true;
  for (size_t j = 0; j < b.size(); ++j) {
    if ((*used_b)[j] || a[i].predicate() != b[j].predicate() ||
        a[i].arity() != b[j].arity()) {
      continue;
    }
    std::vector<std::pair<Term, Term>> added;
    if (BindArgs(st, a[i], b[j], &added)) {
      (*used_b)[j] = true;
      if (MatchBodies(st, a, b, used_b, i + 1)) return true;
      (*used_b)[j] = false;
    }
    Undo(st, added);
  }
  return false;
}

}  // namespace

std::optional<Substitution> FindIsomorphism(const ConjunctiveQuery& a,
                                            const ConjunctiveQuery& b) {
  if (a.head().predicate() != b.head().predicate() ||
      a.head().arity() != b.head().arity() ||
      a.num_subgoals() != b.num_subgoals()) {
    return std::nullopt;
  }
  IsoState st;
  std::vector<std::pair<Term, Term>> head_added;
  if (!BindArgs(&st, a.head(), b.head(), &head_added)) return std::nullopt;
  std::vector<bool> used_b(b.num_subgoals(), false);
  if (!MatchBodies(&st, a.body(), b.body(), &used_b, 0)) return std::nullopt;
  // A bijective atom matching with a consistent injective variable map is a
  // query isomorphism; surjectivity onto vars(b) follows from safety of the
  // matched atoms (every variable of b occurs in some matched atom).
  return st.map;
}

bool Isomorphic(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
  return FindIsomorphism(a, b).has_value();
}

}  // namespace vbr
