#include "cq/rename.h"

#include "cq/term.h"

namespace vbr {

ConjunctiveQuery RenameVariablesApart(const ConjunctiveQuery& q,
                                      std::string_view prefix,
                                      Substitution* out_mapping) {
  Substitution subst;
  // Head variables first so safe queries stay readable, then body.
  for (Term t : q.DistinguishedVariables()) {
    subst.Bind(t, FreshVar(prefix));
  }
  for (Term t : q.Variables()) {
    if (!subst.IsBound(t)) subst.Bind(t, FreshVar(prefix));
  }
  if (out_mapping != nullptr) *out_mapping = subst;
  return subst.Apply(q);
}

}  // namespace vbr
