#ifndef VBR_CQ_RENAME_H_
#define VBR_CQ_RENAME_H_

#include <string_view>

#include "cq/query.h"
#include "cq/substitution.h"

namespace vbr {

// Returns a copy of `q` whose variables are all replaced by fresh variables
// (named "<prefix>$<n>"), guaranteeing disjointness from every other query's
// variables. If `out_mapping` is non-null, receives the old-to-new variable
// substitution.
ConjunctiveQuery RenameVariablesApart(const ConjunctiveQuery& q,
                                      std::string_view prefix,
                                      Substitution* out_mapping = nullptr);

}  // namespace vbr

#endif  // VBR_CQ_RENAME_H_
