#ifndef VBR_CQ_CONTAINMENT_H_
#define VBR_CQ_CONTAINMENT_H_

#include <optional>

#include "cq/query.h"
#include "cq/substitution.h"

namespace vbr {

// Conjunctive-query containment and minimization (Chandra & Merlin 1977).
//
// Q1 is contained in Q2 (Q1 ⊑ Q2: Q1's answer is a subset of Q2's on every
// database) iff there is a containment mapping from Q2 to Q1 — a
// homomorphism on Q2's body whose head image is Q1's head. These procedures
// require comparison-free queries (VBR_CHECKed); the union-rewriting
// extension layers its own treatment of builtins on top.

// Returns a containment mapping from `source` into `target`: a substitution
// h with h(head(source)) = head(target) and h(body(source)) ⊆ body(target).
// Its existence witnesses target ⊑ source. Heads must have equal arity;
// head predicates are ignored (answers are compared positionally).
std::optional<Substitution> FindContainmentMapping(
    const ConjunctiveQuery& source, const ConjunctiveQuery& target);

// Verifies WITHOUT search that `mapping` is a containment mapping from
// `source` into `target`: head(source) maps onto head(target) and every
// mapped body atom of `source` appears in `target`'s body. Used by the
// certificate checker to validate witnesses independently of how they were
// found.
bool IsContainmentMapping(const ConjunctiveQuery& source,
                          const ConjunctiveQuery& target,
                          const Substitution& mapping);

// q1 ⊑ q2.
bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

// q1 ⊑ q2 and q2 ⊑ q1.
bool AreEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

// q1 ⊑ q2 but not q2 ⊑ q1.
bool IsProperlyContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2);

// The core of `q`: an equivalent query with no redundant subgoal, obtained
// by greedily removing subgoals whose removal preserves equivalence. The
// result is unique up to variable renaming. Removal order is deterministic
// (left to right, restarting after each removal).
ConjunctiveQuery Minimize(const ConjunctiveQuery& q);

// True if no single subgoal can be removed from `q` while preserving
// equivalence as a query.
bool IsMinimal(const ConjunctiveQuery& q);

}  // namespace vbr

#endif  // VBR_CQ_CONTAINMENT_H_
