#ifndef VBR_CQ_CONTAINMENT_H_
#define VBR_CQ_CONTAINMENT_H_

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cq/query.h"
#include "cq/substitution.h"

namespace vbr {

// Conjunctive-query containment and minimization (Chandra & Merlin 1977).
//
// Q1 is contained in Q2 (Q1 ⊑ Q2: Q1's answer is a subset of Q2's on every
// database) iff there is a containment mapping from Q2 to Q1 — a
// homomorphism on Q2's body whose head image is Q1's head. These procedures
// require comparison-free queries (VBR_CHECKed); the union-rewriting
// extension layers its own treatment of builtins on top.

// Returns a containment mapping from `source` into `target`: a substitution
// h with h(head(source)) = head(target) and h(body(source)) ⊆ body(target).
// Its existence witnesses target ⊑ source. Heads must have equal arity;
// head predicates are ignored (answers are compared positionally, and the
// view-equivalence grouping deliberately compares queries published under
// different head names).
std::optional<Substitution> FindContainmentMapping(
    const ConjunctiveQuery& source, const ConjunctiveQuery& target);

// FindContainmentMapping plus an explicit completeness verdict. `complete`
// is false when the resource governor cut the search short, in which case a
// missing mapping proves NOTHING: exhaustion must not be read as "no
// mapping" (the bug class this flag exists to close — an exhausted Minimize
// silently returning a non-minimal core that then gets fingerprinted and
// cached).
struct ContainmentSearch {
  std::optional<Substitution> mapping;
  bool complete = true;
};

ContainmentSearch FindContainmentMappingEx(const ConjunctiveQuery& source,
                                           const ConjunctiveQuery& target);

// Verifies WITHOUT search that `mapping` is a containment mapping from
// `source` into `target` AND that the two heads are over the same predicate
// with equal arity. The head-predicate requirement is stricter than the
// search above (which is predicate-agnostic by design): this entry point
// validates externally supplied certificates, where the claimed equivalence
// is between a query and the expansion of a rewriting published under the
// SAME answer relation, so a cross-predicate witness is a forged
// certificate, not a legitimate positional comparison. The body check runs
// in O(n log n) via a sorted view of target's body.
bool IsContainmentMapping(const ConjunctiveQuery& source,
                          const ConjunctiveQuery& target,
                          const Substitution& mapping);

// q1 ⊑ q2.
bool IsContainedIn(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

// q1 ⊑ q2 and q2 ⊑ q1.
bool AreEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

// q1 ⊑ q2 but not q2 ⊑ q1.
bool IsProperlyContainedIn(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2);

// The core of `q`: an equivalent query with no redundant subgoal, obtained
// by greedily removing subgoals whose removal preserves equivalence. The
// result is unique up to variable renaming. Removal order is deterministic
// (left to right, restarting after each removal).
//
// If `complete` is non-null it is set to false when the resource governor
// aborted a removal probe, in which case the result is equivalent to `q`
// but possibly NOT minimal; such results must not feed caches keyed on
// canonical form (see CanonicalQuery::minimize_complete).
ConjunctiveQuery Minimize(const ConjunctiveQuery& q, bool* complete = nullptr);

// True if no single subgoal can be removed from `q` while preserving
// equivalence as a query.
bool IsMinimal(const ConjunctiveQuery& q);

// Process-wide memo of containment verdicts, consulted by IsContainedIn for
// UNGOVERNED checks only. Governed searches may be cut short (their verdict
// would be unsound to reuse) and a memo hit would change how much governed
// work a request performs, breaking the determinism contract budgeted runs
// are tested under — so any installed ResourceGovernor bypasses the memo
// entirely. Checks whose combined body size is tiny also bypass it: the
// prefiltered search beats the key serialization + shard lock there (see
// IsContainedIn).
//
// Keys are the exact structural serialization of the (source, target) pair,
// not canonical fingerprints: fingerprinting minimizes, and minimization is
// built from the very searches being memoized. Same-structure repeats are
// what the workload actually produces (view-equivalence grouping re-probes
// identical pairs across planning runs); renamed duplicates still run the
// search. Verdicts never go stale — containment is a property of the two
// queries alone — so clearing is purely a retention policy: the planner
// clears on view-set replacement (the old view bodies stop recurring) and
// shards self-clear when full.
class ContainmentMemo {
 public:
  static ContainmentMemo& Global();

  static std::string KeyFor(const ConjunctiveQuery& source,
                            const ConjunctiveQuery& target);

  std::optional<bool> Lookup(const std::string& key);
  void Insert(const std::string& key, bool verdict);
  void Clear();

 private:
  static constexpr size_t kNumShards = 16;
  // Per-shard entry cap; a full shard is dropped wholesale (verdicts are
  // recomputable, eviction bookkeeping is not worth its cost here).
  static constexpr size_t kShardCap = 1 << 13;

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, bool> verdicts;
  };

  Shard& ShardFor(const std::string& key);

  Shard shards_[kNumShards];
};

}  // namespace vbr

#endif  // VBR_CQ_CONTAINMENT_H_
