#ifndef VBR_CQ_SUBSTITUTION_H_
#define VBR_CQ_SUBSTITUTION_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cq/atom.h"
#include "cq/query.h"
#include "cq/term.h"

namespace vbr {

// A mapping from variables to terms. Constants always map to themselves, so
// a Substitution represents exactly the variable part of a homomorphism /
// containment mapping.
class Substitution {
 public:
  Substitution() = default;

  // Binds `var` (a variable term) to `target`. Returns false and leaves the
  // substitution unchanged if `var` is already bound to a different term.
  bool Bind(Term var, Term target);

  // Removes the binding for `var` (used by backtracking search). No-op if
  // unbound.
  void Unbind(Term var);

  // The binding for `var`, if any.
  std::optional<Term> Lookup(Term var) const;

  bool IsBound(Term var) const { return map_.count(var.symbol()) > 0; }

  // Applies the substitution: bound variables are replaced, unbound
  // variables and constants pass through.
  Term Apply(Term t) const;
  Atom Apply(const Atom& atom) const;
  std::vector<Atom> Apply(const std::vector<Atom>& atoms) const;
  ConjunctiveQuery Apply(const ConjunctiveQuery& query) const;

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  // All (variable symbol, target) pairs, unordered.
  const std::unordered_map<Symbol, Term>& bindings() const { return map_; }

  // True if no two bound variables share a target and no bound variable maps
  // onto a constant bound from another variable... strictly: all images of
  // distinct domain terms are distinct.
  bool IsInjective() const;

  std::string ToString() const;

 private:
  std::unordered_map<Symbol, Term> map_;
};

}  // namespace vbr

#endif  // VBR_CQ_SUBSTITUTION_H_
