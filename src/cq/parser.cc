#include "cq/parser.h"

#include <cctype>
#include <utility>

#include "common/check.h"
#include "cq/term.h"

namespace vbr {

namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kVariable,  // "?name" / ?"name": explicitly-marked variable
  kString,    // "name": explicitly-marked (quoted) constant
  kLParen,
  kRParen,
  kComma,
  kPeriod,
  kImplies,  // ":-"
  kCompare,  // "<", "<=", ">", ">=", "!="
  kNewline,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  // Tokenizes the whole input. Returns false and sets *error on a bad
  // character.
  bool Tokenize(std::vector<Token>* out, std::string* error) {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        out->push_back({TokenKind::kNewline, "\n", line_});
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' || c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '(') {
        out->push_back({TokenKind::kLParen, "(", line_});
        ++pos_;
      } else if (c == ')') {
        out->push_back({TokenKind::kRParen, ")", line_});
        ++pos_;
      } else if (c == ',') {
        out->push_back({TokenKind::kComma, ",", line_});
        ++pos_;
      } else if (c == '.') {
        out->push_back({TokenKind::kPeriod, ".", line_});
        ++pos_;
      } else if (c == ':') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
          out->push_back({TokenKind::kImplies, ":-", line_});
          pos_ += 2;
        } else {
          return Fail(error, "expected ':-'");
        }
      } else if (c == '<' || c == '>') {
        std::string op(1, c);
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          op += '=';
          ++pos_;
        }
        out->push_back({TokenKind::kCompare, op, line_});
      } else if (c == '!') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          out->push_back({TokenKind::kCompare, "!=", line_});
          pos_ += 2;
        } else {
          return Fail(error, "expected '!='");
        }
      } else if (c == '?') {
        // Explicit variable marker (see FormatTermText): ?ident or ?"...".
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '"') {
          std::string name;
          if (!LexQuoted(&name, error)) return false;
          out->push_back({TokenKind::kVariable, std::move(name), line_});
        } else {
          size_t start = pos_;
          while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
          if (pos_ == start) {
            return Fail(error, "expected a name after '?'");
          }
          out->push_back({TokenKind::kVariable,
                          std::string(text_.substr(start, pos_ - start)),
                          line_});
        }
      } else if (c == '"') {
        std::string name;
        if (!LexQuoted(&name, error)) return false;
        out->push_back({TokenKind::kString, std::move(name), line_});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '$')) {
          ++pos_;
        }
        out->push_back({TokenKind::kIdent,
                        std::string(text_.substr(start, pos_ - start)),
                        line_});
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
        size_t start = pos_;
        ++pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        out->push_back({TokenKind::kNumber,
                        std::string(text_.substr(start, pos_ - start)),
                        line_});
      } else {
        return Fail(error, std::string("unexpected character '") + c + "'");
      }
    }
    out->push_back({TokenKind::kEnd, "", line_});
    return true;
  }

 private:
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$';
  }

  // Consumes a double-quoted name (cursor on the opening quote).  Escapes
  // match FormatTermText: \\ \" and \xNN.
  bool LexQuoted(std::string* name, std::string* error) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\n') break;  // unterminated; keep line numbers honest
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) break;
        const char esc = text_[pos_ + 1];
        if (esc == '\\' || esc == '"') {
          name->push_back(esc);
          pos_ += 2;
          continue;
        }
        if (esc == 'x' && pos_ + 3 < text_.size() &&
            std::isxdigit(static_cast<unsigned char>(text_[pos_ + 2])) &&
            std::isxdigit(static_cast<unsigned char>(text_[pos_ + 3]))) {
          auto hex = [](char h) {
            return h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10;
          };
          name->push_back(static_cast<char>(hex(text_[pos_ + 2]) * 16 +
                                            hex(text_[pos_ + 3])));
          pos_ += 4;
          continue;
        }
        return Fail(error, "bad escape in quoted name");
      }
      name->push_back(c);
      ++pos_;
    }
    return Fail(error, "unterminated quoted name");
  }

  bool Fail(std::string* error, const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_) + ": " + message;
    }
    return false;
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

// A plain identifier is a variable iff it starts with an upper-case letter
// or underscore; ?-marked and quoted tokens carry their kind explicitly.
Term MakeTerm(const Token& token) {
  if (token.kind == TokenKind::kVariable) return Var(token.text);
  if (token.kind == TokenKind::kString) return Const(token.text);
  if (token.kind == TokenKind::kNumber) return Const(token.text);
  const char first = token.text[0];
  if (std::isupper(static_cast<unsigned char>(first)) || first == '_') {
    return Var(token.text);
  }
  return Const(token.text);
}

// Token kinds that may appear where a term is expected.
bool IsTermToken(TokenKind kind) {
  return kind == TokenKind::kIdent || kind == TokenKind::kNumber ||
         kind == TokenKind::kVariable || kind == TokenKind::kString;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string* error)
      : tokens_(std::move(tokens)), error_(error) {}

  std::optional<std::vector<ConjunctiveQuery>> ParseAll() {
    std::vector<ConjunctiveQuery> rules;
    SkipSeparators();
    while (Peek().kind != TokenKind::kEnd) {
      std::optional<ConjunctiveQuery> rule = ParseRule();
      if (!rule.has_value()) return std::nullopt;
      rules.push_back(std::move(*rule));
      SkipSeparators();
    }
    return rules;
  }

  std::optional<ConjunctiveQuery> ParseRule() {
    std::optional<Atom> head = ParseRelationAtom();
    if (!head.has_value()) return std::nullopt;
    if (!Expect(TokenKind::kImplies, "':-'")) return std::nullopt;
    std::vector<Atom> body;
    while (true) {
      SkipNewlines();
      std::optional<Atom> atom = ParseBodyAtom();
      if (!atom.has_value()) return std::nullopt;
      body.push_back(std::move(*atom));
      SkipNewlines();
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    // Rule ends at '.', newline, or end of input.
    if (Peek().kind == TokenKind::kPeriod) Advance();
    return ConjunctiveQuery(std::move(*head), std::move(body));
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  void SkipNewlines() {
    while (Peek().kind == TokenKind::kNewline) Advance();
  }
  void SkipSeparators() {
    while (Peek().kind == TokenKind::kNewline ||
           Peek().kind == TokenKind::kPeriod) {
      Advance();
    }
  }

  bool Expect(TokenKind kind, const char* what) {
    SkipNewlines();
    if (Peek().kind != kind) {
      return Fail(std::string("expected ") + what + ", found '" +
                  Peek().text + "'");
    }
    Advance();
    return true;
  }

  // Either p(args...) or an infix comparison `t1 <= t2`.
  std::optional<Atom> ParseBodyAtom() {
    SkipNewlines();
    const Token& first = Peek();
    if (!IsTermToken(first.kind)) {
      Fail("expected an atom, found '" + first.text + "'");
      return std::nullopt;
    }
    // Lookahead: ident '(' is a relation atom; otherwise a comparison.
    if (first.kind == TokenKind::kIdent &&
        tokens_[pos_ + 1].kind == TokenKind::kLParen) {
      return ParseRelationAtom();
    }
    const Token lhs = Advance();
    if (Peek().kind != TokenKind::kCompare) {
      Fail("expected a comparison operator after '" + lhs.text + "'");
      return std::nullopt;
    }
    const Token op = Advance();
    const Token& rhs_tok = Peek();
    if (!IsTermToken(rhs_tok.kind)) {
      Fail("expected a term after '" + op.text + "'");
      return std::nullopt;
    }
    const Token rhs = Advance();
    return Atom(op.text, {MakeTerm(lhs), MakeTerm(rhs)});
  }

  std::optional<Atom> ParseRelationAtom() {
    SkipNewlines();
    if (Peek().kind != TokenKind::kIdent) {
      Fail("expected a predicate name, found '" + Peek().text + "'");
      return std::nullopt;
    }
    const Token name = Advance();
    if (!Expect(TokenKind::kLParen, "'('")) return std::nullopt;
    std::vector<Term> args;
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        SkipNewlines();
        const Token& t = Peek();
        if (!IsTermToken(t.kind)) {
          Fail("expected a term, found '" + t.text + "'");
          return std::nullopt;
        }
        args.push_back(MakeTerm(Advance()));
        SkipNewlines();
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (!Expect(TokenKind::kRParen, "')'")) return std::nullopt;
    return Atom(name.text, std::move(args));
  }

  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = "line " + std::to_string(Peek().line) + ": " + message;
    }
    return false;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

std::optional<ConjunctiveQuery> ParseQuery(std::string_view text,
                                           std::string* error) {
  std::vector<Token> tokens;
  Lexer lexer(text);
  if (!lexer.Tokenize(&tokens, error)) return std::nullopt;
  Parser parser(std::move(tokens), error);
  std::optional<std::vector<ConjunctiveQuery>> rules = parser.ParseAll();
  if (!rules.has_value()) return std::nullopt;
  if (rules->size() != 1) {
    if (error != nullptr) {
      *error = "expected exactly one rule, found " +
               std::to_string(rules->size());
    }
    return std::nullopt;
  }
  return std::move(rules->front());
}

std::optional<std::vector<ConjunctiveQuery>> ParseProgram(
    std::string_view text, std::string* error) {
  std::vector<Token> tokens;
  Lexer lexer(text);
  if (!lexer.Tokenize(&tokens, error)) return std::nullopt;
  Parser parser(std::move(tokens), error);
  return parser.ParseAll();
}

ConjunctiveQuery MustParseQuery(std::string_view text) {
  std::string error;
  std::optional<ConjunctiveQuery> q = ParseQuery(text, &error);
  VBR_CHECK_MSG(q.has_value(), error.c_str());
  return std::move(*q);
}

std::vector<ConjunctiveQuery> MustParseProgram(std::string_view text) {
  std::string error;
  std::optional<std::vector<ConjunctiveQuery>> p = ParseProgram(text, &error);
  VBR_CHECK_MSG(p.has_value(), error.c_str());
  return std::move(*p);
}

}  // namespace vbr
