// PlanServer: the network front end over PlanningService.
//
// Architecture — a thin I/O shell, with every queueing/overload decision
// delegated to the service it wraps:
//
//   - ONE IO thread runs a poll(2) loop (net/poller.h) over two listeners
//     (binary protocol + HTTP debug endpoint), all accepted connections,
//     and a socketpair wakeup channel.  All reads, writes, frame parsing,
//     and HTTP parsing happen on this thread; it never plans.
//   - Planning goes through PlanningService::SubmitWithCallback, so
//     admission control, deadlines, the brown-out ladder, and retries apply
//     to wire requests exactly as to in-process ones.  The completion
//     callback (worker thread) encodes the response frame and posts it to a
//     completion queue; one byte on the socketpair wakes the IO thread to
//     flush it to the right connection.
//   - A connection that disappears while its request is still planning is
//     simply forgotten: the completion arrives, finds no connection with
//     that id, and is counted in dropped_responses.  Nothing blocks.
//   - ONE debug thread serves GET /explain (ViewPlanner::Explain is
//     deliberately expensive); /metricz, /statz, and /healthz are answered
//     inline on the IO thread.
//
// The server does not own the service or the planner; both must outlive
// it.  Stop() closes the listeners and connections and joins the threads
// but leaves the service running.
#ifndef VBR_SERVER_PLAN_SERVER_H_
#define VBR_SERVER_PLAN_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "net/frame.h"
#include "net/http.h"
#include "net/poller.h"
#include "net/socket.h"
#include "planner/service.h"

namespace vbr::server {

struct PlanServerOptions {
  std::string host = "127.0.0.1";
  // 0 = pick an ephemeral port (read back via binary_port / http_port).
  uint16_t binary_port = 0;
  uint16_t http_port = 0;
  size_t max_connections = 256;
  // At the connection cap: false (default) pauses the listeners so new
  // clients queue in the kernel backlog (accept-backpressure, resumed when
  // a connection closes); true accepts and immediately closes, which the
  // client observes as rejection (counted in rejected_connections).
  bool reject_over_capacity = false;
  uint32_t max_frame_payload = net::kDefaultMaxPayload;
  size_t max_http_request_bytes = 1 << 20;
  // Bounded query-handle map (fingerprint -> parsed query); once full, new
  // texts still plan but are no longer issued handles clients can reuse.
  size_t handle_capacity = 65536;

  // Connection hygiene deadlines, enforced from the poll loop each tick
  // (~200ms granularity).  0 disables the corresponding eviction.
  //
  // A connection with no read activity, no request in flight, and nothing
  // buffered to write for this long is evicted (counted evicted_idle).
  int idle_timeout_ms = 0;
  // Slowloris defense — the progress watermark: once a partial request sits
  // buffered, the client has this long to complete SOME request before the
  // connection is evicted (counted evicted_slowloris).  The watermark
  // resets every time a complete request is consumed, so a slow-but-
  // pipelining client is fine; a client dribbling one byte per second is
  // not.
  int progress_timeout_ms = 0;
  // A connection whose buffered output makes no progress for this long is
  // evicted (counted evicted_write_stall) — the peer stopped reading.
  int write_stall_timeout_ms = 0;
};

// Monotone counters; readable while the server runs.
struct PlanServerStats {
  uint64_t accepted = 0;
  uint64_t rejected_connections = 0;  // over max_connections
  uint64_t active_connections = 0;
  uint64_t frames_received = 0;
  uint64_t responses_sent = 0;
  // Completions whose connection was gone (client disconnected mid-plan).
  uint64_t dropped_responses = 0;
  uint64_t bad_frames = 0;
  uint64_t http_requests = 0;
  uint64_t handle_hits = 0;
  uint64_t handle_misses = 0;
  // Distinct query texts whose fingerprint collided with a stored one;
  // such texts are planned but issued no reusable handle.
  uint64_t handle_collisions = 0;
  // Hygiene evictions (see PlanServerOptions deadlines).
  uint64_t evicted_idle = 0;
  uint64_t evicted_slowloris = 0;
  uint64_t evicted_write_stall = 0;

  std::string ToJson() const;
};

class PlanServer {
 public:
  // `service` (and the planner behind it) must outlive the server.
  PlanServer(PlanningService* service, PlanServerOptions options);
  ~PlanServer();

  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  // Binds both listeners and starts the IO + debug threads.  Returns false
  // and fills *error on bind failure (nothing is left running).
  bool Start(std::string* error);

  // Graceful drain: stops accepting new connections, keeps flushing
  // in-flight completions, closes each connection once it has nothing
  // pending, and returns when all connections are gone or grace_ms
  // elapsed (true = drained cleanly).  Call Stop() afterwards; Stop
  // force-closes whatever the grace period left behind.
  bool Drain(int grace_ms);

  // Idempotent.  Closes listeners and connections, joins threads.  Plan
  // completions arriving after Stop are dropped (never crash).
  void Stop();

  // Bound ports (valid after Start; resolves port-0 binds).
  uint16_t binary_port() const { return binary_port_; }
  uint16_t http_port() const { return http_port_; }

  PlanServerStats stats() const;

 private:
  enum class ConnKind : uint8_t { kBinary, kHttp };

  struct Connection {
    uint64_t id = 0;
    net::OwnedFd fd;
    ConnKind kind = ConnKind::kBinary;
    std::string in;
    std::string out;
    size_t out_offset = 0;
    // Close once `out` is flushed (HTTP Connection: close, fatal frames).
    bool close_after_flush = false;
    // HTTP: a /plan or /explain is in flight; hold further parsing until
    // its response has been queued (one request in flight per connection).
    bool busy = false;
    // Requests submitted minus responses delivered, for dropped-response
    // accounting when the connection dies early.
    uint64_t in_flight = 0;
    // Hygiene clocks (steady-clock milliseconds; 0 = not pending).
    int64_t last_activity_ms = 0;      // last read bytes / full flush
    int64_t partial_since_ms = 0;      // progress watermark (slowloris)
    int64_t write_pending_us = 0;      // when `out` last became non-empty
    int64_t last_write_progress_ms = 0;  // last byte accepted by the kernel
  };

  // Bytes ready to be written to connection `conn_id`, produced by service
  // workers (binary completions, HTTP plan completions) or the debug
  // thread.  Shared via shared_ptr so late completions outlive the server.
  struct Completion {
    uint64_t conn_id = 0;
    std::string wire;
    // Close the connection once `wire` is flushed (HTTP Connection: close).
    bool close_after_flush = false;
  };
  struct CompletionQueue {
    std::mutex mu;
    std::vector<Completion> ready;
    net::OwnedFd wakeup_tx;
    std::atomic<bool> open{true};

    void Post(uint64_t conn_id, std::string wire, bool close_after_flush);
  };

  struct DebugJob {
    uint64_t conn_id = 0;
    net::HttpRequest request;
    bool keep_alive = true;
  };

  void IoLoop();
  void DebugLoop();

  void AcceptAll(int listener_fd, ConnKind kind);
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  void CloseConn(Connection& conn);
  void UpdateInterest(Connection& conn);
  void DrainCompletions();
  // Appends wire bytes to conn.out, stamping the write-stall clock when the
  // buffer transitions from flushed to pending.
  void AppendOutput(Connection& conn, std::string_view wire);
  // One poll-loop tick of hygiene: evicts idle / stalled / slowloris
  // connections per the options' deadlines.
  void EnforceDeadlines();
  // One poll-loop tick of graceful drain: closes listeners, then closes
  // every connection with nothing pending; signals Drain() when none left.
  void DrainTick();
  void PauseAccept();
  void ResumeAccept();

  // Binary path: decodes and dispatches every complete frame in conn.in.
  // Returns true when at least one complete frame was consumed (progress
  // for the slowloris watermark).
  bool ProcessBinary(Connection& conn);
  void SubmitWireRequest(Connection& conn, const net::PlanRequestFrame& frame);
  void SendWireError(Connection& conn, uint64_t request_id,
                     net::WireStatus status, const std::string& error);

  // HTTP path: parses and routes at most one request ahead.  Returns true
  // when at least one complete request was consumed.
  bool ProcessHttp(Connection& conn);
  void RouteHttp(Connection& conn, net::HttpRequest request);
  void HandleHttpPlan(Connection& conn, const net::HttpRequest& request);
  void QueueHttpResponse(Connection& conn, int status_code,
                         std::string_view body, bool keep_alive);

  PlanningService* const service_;
  const PlanServerOptions options_;

  net::OwnedFd binary_listener_;
  net::OwnedFd http_listener_;
  net::OwnedFd wakeup_rx_;
  uint16_t binary_port_ = 0;
  uint16_t http_port_ = 0;

  std::shared_ptr<CompletionQueue> completions_;
  net::Poller poller_;
  // Live connections, keyed both ways: the poller reports fds, completions
  // carry ids (ids are never reused; fds are).
  std::unordered_map<int, std::shared_ptr<Connection>> conns_by_fd_;
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> conns_by_id_;
  uint64_t next_conn_id_ = 1;

  // Query-handle map: fingerprint -> parsed query, IO thread only.  The
  // exact text is kept so a 64-bit fingerprint collision is detected on
  // insert instead of silently serving the first query to both clients.
  struct HandleEntry {
    std::string text;
    ConjunctiveQuery query;
  };
  std::unordered_map<uint64_t, HandleEntry> handles_;

  // Debug worker state.
  std::mutex debug_mu_;
  std::condition_variable debug_cv_;
  std::deque<DebugJob> debug_jobs_;
  bool debug_stop_ = false;

  std::atomic<bool> running_{false};
  bool started_ = false;
  std::thread io_thread_;
  std::thread debug_thread_;

  // Accept-backpressure state (IO thread only).
  bool accept_paused_ = false;

  // Graceful-drain state.
  std::atomic<bool> draining_{false};
  bool drain_listeners_closed_ = false;  // IO thread only
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  bool drain_done_ = false;

  // Time buffered output waited before it was fully flushed, microseconds
  // (near zero on the happy path; the tail is the write-stall signal).
  Histogram* write_stall_us_ = nullptr;

  // Stats counters (atomics: written by IO/debug/worker threads).
  mutable std::atomic<uint64_t> accepted_{0};
  mutable std::atomic<uint64_t> rejected_connections_{0};
  mutable std::atomic<uint64_t> active_connections_{0};
  mutable std::atomic<uint64_t> frames_received_{0};
  mutable std::atomic<uint64_t> responses_sent_{0};
  mutable std::atomic<uint64_t> dropped_responses_{0};
  mutable std::atomic<uint64_t> bad_frames_{0};
  mutable std::atomic<uint64_t> http_requests_{0};
  mutable std::atomic<uint64_t> handle_hits_{0};
  mutable std::atomic<uint64_t> handle_misses_{0};
  mutable std::atomic<uint64_t> handle_collisions_{0};
  mutable std::atomic<uint64_t> evicted_idle_{0};
  mutable std::atomic<uint64_t> evicted_slowloris_{0};
  mutable std::atomic<uint64_t> evicted_write_stall_{0};
};

}  // namespace vbr::server

#endif  // VBR_SERVER_PLAN_SERVER_H_
