#include "server/plan_server.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/json.h"
#include "common/metrics.h"
#include "cq/parser.h"
#include "planner/planner.h"

namespace vbr::server {

namespace {

using net::DecodeStatus;
using net::WireStatus;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Maps a terminal PlanResponse onto the wire representation.
net::PlanResponseFrame ToWire(const PlanningService::PlanResponse& response,
                              uint64_t request_id, bool want_certificate,
                              uint64_t query_handle) {
  net::PlanResponseFrame frame;
  frame.request_id = request_id;
  frame.query_handle = query_handle;
  switch (response.status) {
    case PlanningService::ServiceStatus::kOk:
      frame.status = WireStatus::kOk;
      break;
    case PlanningService::ServiceStatus::kRejected:
      frame.status = WireStatus::kRejected;
      break;
    case PlanningService::ServiceStatus::kShed:
      frame.status = WireStatus::kShed;
      break;
    case PlanningService::ServiceStatus::kFailed:
      frame.status = WireStatus::kFailed;
      break;
  }
  frame.reject_reason = static_cast<uint8_t>(response.reject_reason);
  frame.attempts = static_cast<uint8_t>(
      response.attempts > 255 ? 255 : response.attempts);
  frame.service_level = response.service_level;
  frame.served_from_cache_only = response.served_from_cache_only;
  frame.model_demoted = response.model_demoted;
  frame.queue_wait_ms = response.queue_wait_ms;
  frame.error = response.error;
  if (response.status == PlanningService::ServiceStatus::kOk) {
    const ViewPlanner::PlanResult& result = response.result;
    frame.plan_status = static_cast<uint8_t>(result.status);
    frame.cache_hit = result.cache_hit;
    frame.degraded = result.degraded;
    if (frame.error.empty()) frame.error = result.error;
    if (result.choice.has_value()) {
      frame.cost = result.choice->cost;
      frame.rewriting = result.choice->logical.ToString();
      if (want_certificate) {
        frame.certificate = result.choice->certificate.ToString();
      }
    }
  }
  return frame;
}

// HTTP status for a service disposition.
int HttpCodeFor(const PlanningService::PlanResponse& response) {
  switch (response.status) {
    case PlanningService::ServiceStatus::kOk:
      return 200;
    case PlanningService::ServiceStatus::kRejected:
      return response.reject_reason ==
                     PlanningService::RejectReason::kShuttingDown
                 ? 503
                 : 429;
    case PlanningService::ServiceStatus::kShed:
      return 503;
    case PlanningService::ServiceStatus::kFailed:
      return 500;
  }
  return 500;
}

std::string JsonError(const std::string& message) {
  return "{\"error\":\"" + JsonEscape(message) + "\"}";
}

}  // namespace

std::string PlanServerStats::ToJson() const {
  std::string s = "{";
  s += "\"accepted\":" + std::to_string(accepted);
  s += ",\"rejected_connections\":" + std::to_string(rejected_connections);
  s += ",\"active_connections\":" + std::to_string(active_connections);
  s += ",\"frames_received\":" + std::to_string(frames_received);
  s += ",\"responses_sent\":" + std::to_string(responses_sent);
  s += ",\"dropped_responses\":" + std::to_string(dropped_responses);
  s += ",\"bad_frames\":" + std::to_string(bad_frames);
  s += ",\"http_requests\":" + std::to_string(http_requests);
  s += ",\"handle_hits\":" + std::to_string(handle_hits);
  s += ",\"handle_misses\":" + std::to_string(handle_misses);
  s += ",\"handle_collisions\":" + std::to_string(handle_collisions);
  s += ",\"evicted_idle\":" + std::to_string(evicted_idle);
  s += ",\"evicted_slowloris\":" + std::to_string(evicted_slowloris);
  s += ",\"evicted_write_stall\":" + std::to_string(evicted_write_stall);
  s += "}";
  return s;
}

void PlanServer::CompletionQueue::Post(uint64_t conn_id, std::string wire,
                                       bool close_after_flush) {
  if (!open.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(mu);
    ready.push_back({conn_id, std::move(wire), close_after_flush});
  }
  const char byte = 1;
  (void)net::WriteSome(wakeup_tx.get(), &byte, 1);
}

PlanServer::PlanServer(PlanningService* service, PlanServerOptions options)
    : service_(service),
      options_(std::move(options)),
      write_stall_us_(
          MetricsRegistry::Global().GetHistogram("server.write_stall_us")) {}

PlanServer::~PlanServer() { Stop(); }

bool PlanServer::Start(std::string* error) {
  if (started_) {
    if (error != nullptr) *error = "server already started";
    return false;
  }
  binary_listener_ =
      net::ListenTcp(options_.host, options_.binary_port, error);
  if (!binary_listener_.valid()) return false;
  http_listener_ = net::ListenTcp(options_.host, options_.http_port, error);
  if (!http_listener_.valid()) {
    binary_listener_.reset();
    return false;
  }
  completions_ = std::make_shared<CompletionQueue>();
  if (!net::SocketPair(&wakeup_rx_, &completions_->wakeup_tx, error)) {
    binary_listener_.reset();
    http_listener_.reset();
    completions_.reset();
    return false;
  }
  binary_port_ = net::LocalPort(binary_listener_.get());
  http_port_ = net::LocalPort(http_listener_.get());

  poller_ = net::Poller();
  poller_.Watch(binary_listener_.get(), /*want_read=*/true, false);
  poller_.Watch(http_listener_.get(), /*want_read=*/true, false);
  poller_.Watch(wakeup_rx_.get(), /*want_read=*/true, false);

  running_.store(true, std::memory_order_release);
  started_ = true;
  debug_stop_ = false;
  accept_paused_ = false;
  draining_.store(false, std::memory_order_release);
  drain_listeners_closed_ = false;
  drain_done_ = false;
  io_thread_ = std::thread([this] { IoLoop(); });
  debug_thread_ = std::thread([this] { DebugLoop(); });
  return true;
}

bool PlanServer::Drain(int grace_ms) {
  if (!started_) return true;
  draining_.store(true, std::memory_order_release);
  const char byte = 1;
  (void)net::WriteSome(completions_->wakeup_tx.get(), &byte, 1);
  std::unique_lock<std::mutex> lock(drain_mu_);
  return drain_cv_.wait_for(lock, std::chrono::milliseconds(grace_ms),
                            [this] { return drain_done_; });
}

void PlanServer::Stop() {
  if (!started_) return;
  running_.store(false, std::memory_order_release);
  completions_->open.store(false, std::memory_order_release);
  const char byte = 1;
  (void)net::WriteSome(completions_->wakeup_tx.get(), &byte, 1);
  io_thread_.join();
  {
    std::lock_guard<std::mutex> lock(debug_mu_);
    debug_stop_ = true;
  }
  debug_cv_.notify_all();
  debug_thread_.join();

  conns_by_fd_.clear();
  conns_by_id_.clear();
  handles_.clear();
  binary_listener_.reset();
  http_listener_.reset();
  wakeup_rx_.reset();
  active_connections_.store(0, std::memory_order_relaxed);
  started_ = false;
}

PlanServerStats PlanServer::stats() const {
  PlanServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_connections =
      rejected_connections_.load(std::memory_order_relaxed);
  s.active_connections = active_connections_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  s.dropped_responses = dropped_responses_.load(std::memory_order_relaxed);
  s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  s.http_requests = http_requests_.load(std::memory_order_relaxed);
  s.handle_hits = handle_hits_.load(std::memory_order_relaxed);
  s.handle_misses = handle_misses_.load(std::memory_order_relaxed);
  s.handle_collisions = handle_collisions_.load(std::memory_order_relaxed);
  s.evicted_idle = evicted_idle_.load(std::memory_order_relaxed);
  s.evicted_slowloris = evicted_slowloris_.load(std::memory_order_relaxed);
  s.evicted_write_stall =
      evicted_write_stall_.load(std::memory_order_relaxed);
  return s;
}

void PlanServer::IoLoop() {
  int logged_poll_errno = 0;
  while (running_.load(std::memory_order_acquire)) {
    net::PollStatus poll_status = net::PollStatus::kReady;
    std::vector<net::PollEntry> ready =
        poller_.Wait(/*timeout_ms=*/200, &poll_status);
    if (poll_status == net::PollStatus::kError &&
        poller_.last_error() != logged_poll_errno) {
      // Log each distinct errno once; a persistent poll error otherwise
      // spins this loop silently at full speed.
      logged_poll_errno = poller_.last_error();
      std::fprintf(stderr, "plan_server: poll failed: %s\n",
                   std::strerror(logged_poll_errno));
    }
    for (const net::PollEntry& entry : ready) {
      if (entry.fd == binary_listener_.get()) {
        AcceptAll(entry.fd, ConnKind::kBinary);
        continue;
      }
      if (entry.fd == http_listener_.get()) {
        AcceptAll(entry.fd, ConnKind::kHttp);
        continue;
      }
      if (entry.fd == wakeup_rx_.get()) {
        char scratch[256];
        while (net::ReadSome(wakeup_rx_.get(), scratch, sizeof(scratch))
                   .status == net::IoStatus::kOk) {
        }
        continue;
      }
      const auto it = conns_by_fd_.find(entry.fd);
      if (it == conns_by_fd_.end()) continue;
      const std::shared_ptr<Connection> conn = it->second;
      if (entry.events.readable || entry.events.closed) {
        HandleReadable(*conn);
      }
      if (conn->fd.valid() && entry.events.writable) {
        HandleWritable(*conn);
      }
    }
    // Flush completions posted by workers while we were handling events.
    DrainCompletions();
    EnforceDeadlines();
    if (draining_.load(std::memory_order_acquire)) DrainTick();
  }
}

void PlanServer::EnforceDeadlines() {
  if (options_.idle_timeout_ms <= 0 && options_.progress_timeout_ms <= 0 &&
      options_.write_stall_timeout_ms <= 0) {
    return;
  }
  const int64_t now = NowMs();
  // Snapshot: CloseConn mutates conns_by_fd_.
  std::vector<std::shared_ptr<Connection>> conns;
  conns.reserve(conns_by_fd_.size());
  for (const auto& [fd, conn] : conns_by_fd_) conns.push_back(conn);
  for (const std::shared_ptr<Connection>& conn : conns) {
    if (!conn->fd.valid()) continue;
    const bool out_pending = conn->out_offset < conn->out.size();
    if (options_.write_stall_timeout_ms > 0 && out_pending &&
        now - conn->last_write_progress_ms > options_.write_stall_timeout_ms) {
      evicted_write_stall_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(*conn);
      continue;
    }
    if (options_.progress_timeout_ms > 0 && conn->partial_since_ms != 0 &&
        now - conn->partial_since_ms > options_.progress_timeout_ms) {
      evicted_slowloris_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(*conn);
      continue;
    }
    if (options_.idle_timeout_ms > 0 && conn->in_flight == 0 &&
        !out_pending && conn->partial_since_ms == 0 &&
        now - conn->last_activity_ms > options_.idle_timeout_ms) {
      evicted_idle_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(*conn);
    }
  }
}

void PlanServer::DrainTick() {
  if (!drain_listeners_closed_) {
    poller_.Forget(binary_listener_.get());
    poller_.Forget(http_listener_.get());
    drain_listeners_closed_ = true;
  }
  std::vector<std::shared_ptr<Connection>> conns;
  conns.reserve(conns_by_fd_.size());
  for (const auto& [fd, conn] : conns_by_fd_) conns.push_back(conn);
  for (const std::shared_ptr<Connection>& conn : conns) {
    if (!conn->fd.valid()) continue;
    // A connection still owes responses (planning, or buffered output);
    // keep it until the completion flushes.
    if (conn->in_flight > 0 || conn->out_offset < conn->out.size()) continue;
    CloseConn(*conn);
  }
  if (conns_by_fd_.empty()) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_done_ = true;
    drain_cv_.notify_all();
  }
}

void PlanServer::PauseAccept() {
  if (accept_paused_) return;
  poller_.Forget(binary_listener_.get());
  poller_.Forget(http_listener_.get());
  accept_paused_ = true;
}

void PlanServer::ResumeAccept() {
  if (!accept_paused_) return;
  poller_.Watch(binary_listener_.get(), /*want_read=*/true, false);
  poller_.Watch(http_listener_.get(), /*want_read=*/true, false);
  accept_paused_ = false;
}

void PlanServer::AcceptAll(int listener_fd, ConnKind kind) {
  while (true) {
    if (conns_by_fd_.size() >= options_.max_connections &&
        !options_.reject_over_capacity) {
      // Accept-backpressure: stop watching the listeners; new clients wait
      // in the kernel backlog until a connection closes (ResumeAccept).
      PauseAccept();
      return;
    }
    net::OwnedFd fd = net::AcceptConn(listener_fd);
    if (!fd.valid()) return;
    if (conns_by_fd_.size() >= options_.max_connections) {
      rejected_connections_.fetch_add(1, std::memory_order_relaxed);
      continue;  // OwnedFd closes it; client sees an orderly RST/EOF
    }
    auto conn = std::make_shared<Connection>();
    conn->id = next_conn_id_++;
    conn->kind = kind;
    const int raw = fd.get();
    conn->fd = std::move(fd);
    conn->last_activity_ms = NowMs();
    conns_by_fd_[raw] = conn;
    conns_by_id_[conn->id] = conn;
    poller_.Watch(raw, /*want_read=*/true, /*want_write=*/false);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanServer::CloseConn(Connection& conn) {
  if (!conn.fd.valid()) return;
  // The two maps are the only owners of the Connection; hold a reference
  // until cleanup is done touching it (a caller may only have a bare
  // reference into the maps).
  std::shared_ptr<Connection> keep;
  if (const auto it = conns_by_id_.find(conn.id); it != conns_by_id_.end()) {
    keep = it->second;
  }
  // Responses still planning for this connection will find no entry in
  // conns_by_id_ and are counted as dropped when they arrive.
  poller_.Forget(conn.fd.get());
  conns_by_fd_.erase(conn.fd.get());
  conns_by_id_.erase(conn.id);
  conn.fd.reset();
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  if (accept_paused_ && !draining_.load(std::memory_order_acquire) &&
      conns_by_fd_.size() < options_.max_connections) {
    ResumeAccept();
  }
}

void PlanServer::UpdateInterest(Connection& conn) {
  if (!conn.fd.valid()) return;
  const bool want_write = conn.out_offset < conn.out.size();
  poller_.Watch(conn.fd.get(), /*want_read=*/true, want_write);
}

void PlanServer::HandleReadable(Connection& conn) {
  // Per-event input cap: a firehose client must not let one readable
  // event grow `in` without bound and monopolize the IO loop (deadline
  // enforcement and completion flushing run between events).  The poll is
  // level-triggered, so unread kernel data re-fires the event next tick.
  constexpr size_t kMaxBufferedInput = 256 * 1024;
  char chunk[16 * 1024];
  bool got_bytes = false;
  while (conn.fd.valid() && conn.in.size() < kMaxBufferedInput) {
    const net::IoResult r =
        net::ReadSome(conn.fd.get(), chunk, sizeof(chunk));
    if (r.status == net::IoStatus::kOk) {
      conn.in.append(chunk, r.n);
      got_bytes = true;
      continue;
    }
    if (r.status == net::IoStatus::kWouldBlock) break;
    CloseConn(conn);  // EOF or error
    return;
  }
  if (got_bytes) conn.last_activity_ms = NowMs();
  bool progressed;
  if (conn.kind == ConnKind::kBinary) {
    progressed = ProcessBinary(conn);
  } else {
    progressed = ProcessHttp(conn);
  }
  if (conn.fd.valid()) {
    // Slowloris watermark: consuming a complete request (or emptying the
    // buffer) restarts the clock; a lingering partial keeps its start time.
    if (conn.in.empty() || progressed) {
      conn.partial_since_ms = conn.in.empty() ? 0 : NowMs();
    } else if (!conn.in.empty() && conn.partial_since_ms == 0) {
      conn.partial_since_ms = NowMs();
    }
  }
  UpdateInterest(conn);
}

void PlanServer::HandleWritable(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const net::IoResult r =
        net::WriteSome(conn.fd.get(), conn.out.data() + conn.out_offset,
                       conn.out.size() - conn.out_offset);
    if (r.status == net::IoStatus::kOk) {
      conn.out_offset += r.n;
      conn.last_write_progress_ms = NowMs();
      continue;
    }
    if (r.status == net::IoStatus::kWouldBlock) break;
    CloseConn(conn);
    return;
  }
  if (conn.out_offset >= conn.out.size()) {
    if (!conn.out.empty()) {
      conn.out.clear();
      conn.out_offset = 0;
      conn.last_activity_ms = NowMs();
      if (conn.write_pending_us != 0) {
        const int64_t waited = NowUs() - conn.write_pending_us;
        write_stall_us_->Record(waited < 0 ? 0 : waited);
        conn.write_pending_us = 0;
      }
    }
    if (conn.close_after_flush) {
      CloseConn(conn);
      return;
    }
  }
  UpdateInterest(conn);
}

void PlanServer::AppendOutput(Connection& conn, std::string_view wire) {
  if (conn.out_offset >= conn.out.size()) {
    // Buffer transitions flushed -> pending: start the stall clocks.
    conn.write_pending_us = NowUs();
    conn.last_write_progress_ms = NowMs();
  }
  conn.out.append(wire);
}

void PlanServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_->mu);
    batch.swap(completions_->ready);
  }
  for (auto& [conn_id, wire, close_after_flush] : batch) {
    const auto it = conns_by_id_.find(conn_id);
    if (it == conns_by_id_.end()) {
      dropped_responses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Own the connection across the flush: HandleWritable/ProcessHttp may
    // CloseConn, which erases the maps' (otherwise only) references.
    const std::shared_ptr<Connection> conn_ptr = it->second;
    Connection& conn = *conn_ptr;
    AppendOutput(conn, wire);
    if (close_after_flush) conn.close_after_flush = true;
    responses_sent_.fetch_add(1, std::memory_order_relaxed);
    if (conn.in_flight > 0) --conn.in_flight;
    if (conn.kind == ConnKind::kHttp) {
      conn.busy = false;
      // A queued pipeline request may already be buffered.
      ProcessHttp(conn);
    }
    if (conn.fd.valid()) {
      HandleWritable(conn);  // opportunistic flush; also updates interest
    }
  }
}

// ---------------------------------------------------------------- binary --

void PlanServer::SendWireError(Connection& conn, uint64_t request_id,
                               WireStatus status, const std::string& error) {
  net::PlanResponseFrame frame;
  frame.request_id = request_id;
  frame.status = status;
  frame.error = error;
  std::string wire;
  EncodePlanResponse(frame, &wire);
  AppendOutput(conn, wire);
  responses_sent_.fetch_add(1, std::memory_order_relaxed);
}

bool PlanServer::ProcessBinary(Connection& conn) {
  bool progressed = false;
  // Consume frames from a moving offset and erase the prefix ONCE at the
  // end: erasing per frame is a memmove of the whole remaining buffer,
  // which goes quadratic exactly when a flood client piles frames up.
  size_t pos = 0;
  while (conn.fd.valid()) {
    std::string_view payload;
    size_t consumed = 0;
    const DecodeStatus es =
        net::ExtractFrame(std::string_view(conn.in).substr(pos),
                          options_.max_frame_payload, &payload, &consumed);
    if (es == DecodeStatus::kNeedMore) break;
    if (es != DecodeStatus::kOk) {
      // Oversized length prefix: the stream cannot be resynchronized.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(conn);
      return progressed;
    }
    progressed = true;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    net::PlanRequestFrame frame;
    const DecodeStatus ds = net::DecodePlanRequest(payload, &frame);
    pos += consumed;
    switch (ds) {
      case DecodeStatus::kOk:
        SubmitWireRequest(conn, frame);
        break;
      case DecodeStatus::kVersionSkew:
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        SendWireError(conn, frame.request_id,
                      WireStatus::kUnsupportedVersion,
                      "protocol version newer than server");
        break;
      default:
        // Framing was intact (length prefix consumed), so the stream stays
        // in sync; report and keep the connection.
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        SendWireError(conn, frame.request_id, WireStatus::kBadRequest,
                      std::string("malformed request frame: ") +
                          net::DecodeStatusName(ds));
        break;
    }
  }
  if (conn.fd.valid() && pos > 0) conn.in.erase(0, pos);
  return progressed;
}

void PlanServer::SubmitWireRequest(Connection& conn,
                                   const net::PlanRequestFrame& frame) {
  ConjunctiveQuery query;
  uint64_t handle = 0;
  if (frame.query_is_handle) {
    const auto it = handles_.find(frame.query_handle);
    if (it == handles_.end()) {
      handle_misses_.fetch_add(1, std::memory_order_relaxed);
      SendWireError(conn, frame.request_id, WireStatus::kUnknownHandle,
                    "unknown query handle; resend the query text");
      return;
    }
    handle_hits_.fetch_add(1, std::memory_order_relaxed);
    handle = frame.query_handle;
    query = it->second.query;
  } else {
    std::string parse_error;
    std::optional<ConjunctiveQuery> parsed =
        ParseQuery(frame.query_text, &parse_error);
    if (!parsed.has_value()) {
      SendWireError(conn, frame.request_id, WireStatus::kBadRequest,
                    "query parse error: " + parse_error);
      return;
    }
    query = std::move(*parsed);
    handle = net::HashQueryText(frame.query_text);
    if (const auto hit = handles_.find(handle); hit != handles_.end()) {
      if (hit->second.text != frame.query_text) {
        // 64-bit fingerprint collision: the stored query keeps the handle.
        // Issue none for this text, or its reuse would silently plan a
        // different query.
        handle_collisions_.fetch_add(1, std::memory_order_relaxed);
        handle = 0;
      }
    } else if (handles_.size() < options_.handle_capacity) {
      handles_.emplace(handle, HandleEntry{frame.query_text, query});
    } else {
      handle = 0;  // map full: plan anyway, but the handle is not reusable
    }
  }

  PlanningService::PlanRequest request;
  request.query = std::move(query);
  request.options = frame.options;
  ++conn.in_flight;

  // The callback runs on a service worker thread; it owns nothing of the
  // server except the completion queue (kept alive by shared_ptr), so a
  // completion after Stop() is a no-op rather than a crash.
  const std::shared_ptr<CompletionQueue> queue = completions_;
  const uint64_t conn_id = conn.id;
  const uint64_t request_id = frame.request_id;
  const bool want_certificate = frame.want_certificate;
  service_->SubmitWithCallback(
      std::move(request),
      [queue, conn_id, request_id, want_certificate,
       handle](PlanningService::PlanResponse response) {
        const net::PlanResponseFrame frame =
            ToWire(response, request_id, want_certificate, handle);
        std::string wire;
        EncodePlanResponse(frame, &wire);
        queue->Post(conn_id, std::move(wire), /*close_after_flush=*/false);
      });
}

// ------------------------------------------------------------------ http --

void PlanServer::QueueHttpResponse(Connection& conn, int status_code,
                                   std::string_view body, bool keep_alive) {
  AppendOutput(conn, net::BuildHttpResponse(status_code, "application/json",
                                            body, keep_alive));
  responses_sent_.fetch_add(1, std::memory_order_relaxed);
  if (!keep_alive) conn.close_after_flush = true;
}

bool PlanServer::ProcessHttp(Connection& conn) {
  bool progressed = false;
  while (conn.fd.valid() && !conn.busy) {
    net::HttpRequest request;
    size_t consumed = 0;
    const net::HttpParseStatus ps = net::ParseHttpRequest(
        conn.in, options_.max_http_request_bytes, &request, &consumed);
    if (ps == net::HttpParseStatus::kNeedMore) return progressed;
    if (ps == net::HttpParseStatus::kTooLarge) {
      QueueHttpResponse(conn, 413, JsonError("request too large"),
                        /*keep_alive=*/false);
      return progressed;
    }
    if (ps == net::HttpParseStatus::kBad) {
      QueueHttpResponse(conn, 400, JsonError("malformed HTTP request"),
                        /*keep_alive=*/false);
      return progressed;
    }
    conn.in.erase(0, consumed);
    progressed = true;
    http_requests_.fetch_add(1, std::memory_order_relaxed);
    RouteHttp(conn, std::move(request));
  }
  return progressed;
}

void PlanServer::RouteHttp(Connection& conn, net::HttpRequest request) {
  const bool keep_alive = request.keep_alive;
  if (request.path == "/healthz") {
    const std::string body =
        "{\"status\":\"ok\",\"service_level\":" +
        std::to_string(service_->service_level()) + "}";
    QueueHttpResponse(conn, 200, body, keep_alive);
    return;
  }
  if (request.path == "/metricz") {
    const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    const auto format = request.params.find("format");
    if (format != request.params.end() && format->second == "text") {
      AppendOutput(conn, net::BuildHttpResponse(
          200, "text/plain; charset=utf-8", snapshot.ToText(), keep_alive));
      responses_sent_.fetch_add(1, std::memory_order_relaxed);
      if (!keep_alive) conn.close_after_flush = true;
    } else {
      QueueHttpResponse(conn, 200, snapshot.ToJson(), keep_alive);
    }
    return;
  }
  if (request.path == "/statz") {
    const std::string body = "{\"service\":" + service_->stats().ToJson() +
                             ",\"server\":" + stats().ToJson() + "}";
    QueueHttpResponse(conn, 200, body, keep_alive);
    return;
  }
  if (request.path == "/plan") {
    if (request.method != "POST") {
      QueueHttpResponse(conn, 405, JsonError("use POST /plan"), keep_alive);
      return;
    }
    HandleHttpPlan(conn, request);
    return;
  }
  if (request.path == "/explain") {
    if (request.method != "GET") {
      QueueHttpResponse(conn, 405, JsonError("use GET /explain"), keep_alive);
      return;
    }
    if (request.params.find("q") == request.params.end()) {
      QueueHttpResponse(conn, 400,
                        JsonError("missing ?q=<urlencoded datalog query>"),
                        keep_alive);
      return;
    }
    conn.busy = true;
    ++conn.in_flight;
    {
      std::lock_guard<std::mutex> lock(debug_mu_);
      debug_jobs_.push_back({conn.id, std::move(request), keep_alive});
    }
    debug_cv_.notify_one();
    return;
  }
  QueueHttpResponse(conn, 404, JsonError("no such endpoint"), keep_alive);
}

void PlanServer::HandleHttpPlan(Connection& conn,
                                const net::HttpRequest& request) {
  const bool keep_alive = request.keep_alive;
  std::string error;
  std::optional<JsonValue> body = ParseJson(request.body, &error);
  if (!body.has_value() || !body->is_object()) {
    QueueHttpResponse(
        conn, 400,
        JsonError("body must be a JSON object: " +
                  (error.empty() ? std::string("not an object") : error)),
        keep_alive);
    return;
  }
  const JsonValue* query_member = body->Get("query");
  if (query_member == nullptr || !query_member->is_string()) {
    QueueHttpResponse(conn, 400,
                      JsonError("\"query\" must be a datalog rule string"),
                      keep_alive);
    return;
  }
  PlanRequestOptions options;
  if (const JsonValue* options_member = body->Get("options");
      options_member != nullptr) {
    std::optional<PlanRequestOptions> parsed =
        PlanRequestOptions::FromJson(*options_member, &error);
    if (!parsed.has_value()) {
      QueueHttpResponse(conn, 400, JsonError("options: " + error),
                        keep_alive);
      return;
    }
    options = *parsed;
  }
  std::optional<ConjunctiveQuery> query =
      ParseQuery(query_member->string_value(), &error);
  if (!query.has_value()) {
    QueueHttpResponse(conn, 400, JsonError("query parse error: " + error),
                      keep_alive);
    return;
  }

  PlanningService::PlanRequest plan_request;
  plan_request.query = std::move(*query);
  plan_request.options = options;

  conn.busy = true;
  ++conn.in_flight;
  const std::shared_ptr<CompletionQueue> queue = completions_;
  const uint64_t conn_id = conn.id;
  service_->SubmitWithCallback(
      std::move(plan_request),
      [queue, conn_id, keep_alive](PlanningService::PlanResponse response) {
        std::string wire = net::BuildHttpResponse(
            HttpCodeFor(response), "application/json", response.ToJson(),
            keep_alive);
        queue->Post(conn_id, std::move(wire), /*close_after_flush=*/!keep_alive);
      });
}

void PlanServer::DebugLoop() {
  while (true) {
    DebugJob job;
    {
      std::unique_lock<std::mutex> lock(debug_mu_);
      debug_cv_.wait(lock,
                     [this] { return debug_stop_ || !debug_jobs_.empty(); });
      if (debug_stop_ && debug_jobs_.empty()) return;
      job = std::move(debug_jobs_.front());
      debug_jobs_.pop_front();
    }
    std::string body;
    int code = 200;
    std::string error;
    const std::string& text = job.request.params.at("q");
    std::optional<ConjunctiveQuery> query = ParseQuery(text, &error);
    CostModel model = CostModel::kM2;
    if (const auto it = job.request.params.find("model");
        it != job.request.params.end() &&
        !CostModelFromName(it->second, &model)) {
      code = 400;
      body = JsonError("model must be m1|m2|m3");
    } else if (!query.has_value()) {
      code = 400;
      body = JsonError("query parse error: " + error);
    } else {
      const ViewPlanner::PlanExplanation explanation =
          service_->planner().Explain(*query, model);
      body = explanation.ToJson();
    }
    std::string wire =
        net::BuildHttpResponse(code, "application/json", body,
                               job.keep_alive);
    completions_->Post(job.conn_id, std::move(wire),
                       /*close_after_flush=*/!job.keep_alive);
  }
}

}  // namespace vbr::server
