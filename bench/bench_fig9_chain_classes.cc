// Figure 9: equivalence-class counts for CHAIN queries as the number of
// views grows — view classes saturate with a decreasing slope while the
// representative view tuples stay nearly constant (the paper's Figure 9(b)
// shows the raw tuple count climbing past 300 while the representatives
// stay flat).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "rewrite/core_cover.h"

namespace vbr {
namespace {

void RunFigure9(benchmark::State& state, size_t nondistinguished) {
  const size_t num_views = static_cast<size_t>(state.range(0));
  const auto& batch = bench_util::WorkloadBatch(QueryShape::kChain, num_views,
                                                nondistinguished);
  double view_classes = 0;
  double tuple_classes = 0;
  double view_tuples = 0;
  for (auto _ : state) {
    view_classes = tuple_classes = view_tuples = 0;
    for (const Workload& w : batch) {
      CoreCoverOptions options;
      options.group_views = false;
      const auto result = CoreCover(w.query, w.views, options);
      benchmark::DoNotOptimize(result.stats.num_tuple_classes);
      view_tuples += static_cast<double>(result.stats.num_view_tuples);
      tuple_classes += static_cast<double>(result.stats.num_tuple_classes);
      view_classes += static_cast<double>(
          GroupViewsByEquivalence(w.views).num_classes());
    }
  }
  const double n = static_cast<double>(batch.size());
  state.counters["views"] = static_cast<double>(num_views);
  state.counters["avg_view_classes"] = view_classes / n;
  state.counters["avg_view_tuples"] = view_tuples / n;
  state.counters["avg_tuple_classes"] = tuple_classes / n;
}

void BM_Fig9_Chain_AllDistinguished(benchmark::State& state) {
  RunFigure9(state, 0);
}
void BM_Fig9_Chain_OneNondistinguished(benchmark::State& state) {
  RunFigure9(state, 1);
}

BENCHMARK(BM_Fig9_Chain_AllDistinguished)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(600)->Arg(800)->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig9_Chain_OneNondistinguished)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(600)->Arg(800)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vbr

BENCHMARK_MAIN();
