#ifndef VBR_BENCH_BENCH_UTIL_H_
#define VBR_BENCH_BENCH_UTIL_H_

#include <map>
#include <vector>

#include "workload/generator.h"

namespace vbr {
namespace bench_util {

// The paper's Section 7 setup: 8-subgoal queries, views of 1-3 subgoals,
// a fixed base-relation pool, N views, averaged over a batch of queries
// (the paper uses 40 per point; benches default to a smaller batch since
// each iteration re-runs the whole batch).
inline constexpr size_t kQuerySubgoals = 8;
inline constexpr size_t kPredicatePool = 10;
inline constexpr size_t kBatch = 8;

// Generates (and memoizes) a batch of workloads for one figure point.
inline const std::vector<Workload>& WorkloadBatch(QueryShape shape,
                                                  size_t num_views,
                                                  size_t nondistinguished) {
  static std::map<std::tuple<int, size_t, size_t>, std::vector<Workload>>*
      cache = new std::map<std::tuple<int, size_t, size_t>,
                           std::vector<Workload>>;
  const auto key =
      std::make_tuple(static_cast<int>(shape), num_views, nondistinguished);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;

  std::vector<Workload> batch;
  batch.reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    WorkloadConfig config;
    config.shape = shape;
    config.num_query_subgoals = kQuerySubgoals;
    config.num_predicates = kPredicatePool;
    config.num_views = num_views;
    config.num_nondistinguished_query_vars = nondistinguished;
    config.num_nondistinguished_view_vars = nondistinguished;
    config.seed = 1000 + i * 97 + num_views;
    batch.push_back(GenerateWorkload(config));
  }
  return cache->emplace(key, std::move(batch)).first->second;
}

}  // namespace bench_util
}  // namespace vbr

#endif  // VBR_BENCH_BENCH_UTIL_H_
