// PlanningService overhead and overload throughput.
//
// Two questions, each a claim in DESIGN.md "Serving and overload":
//
// 1. Pass-through overhead — a blocking service Plan() at concurrency 1
//    pays one queue round-trip (mutex, condvar wake, promise/future) on top
//    of the identical planner call. BM_DirectPlan vs BM_ServicePlan on the
//    same cache-disabled planner isolates that cost; the acceptance bar is
//    < 5% on these ~millisecond plans.
//
// 2. Overload behavior — BM_ServiceThroughput drives an unpaced batch of
//    renamed queries (cache-enabled planner, so per-request work is small)
//    through a small bounded queue at several worker counts and reports
//    achieved qps plus the admission-control outcome mix (rejected share)
//    as counters. This is the source of the EXPERIMENTS.md service table.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "cq/rename.h"
#include "cq/substitution.h"
#include "engine/materialize.h"
#include "planner/planner.h"
#include "planner/service.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

struct BenchSetup {
  Workload workload;
  Database view_db;

  explicit BenchSetup(uint64_t seed) {
    WorkloadConfig wc;
    wc.shape = QueryShape::kStar;
    // Big enough that one cold plan costs ~a millisecond: the service's
    // fixed per-request handoff (one condvar round-trip, ~tens of µs on a
    // single core) must be measured against realistic planning work, not
    // against a toy plan it would dominate.
    wc.num_query_subgoals = 8;
    wc.num_views = 50;
    wc.seed = seed;
    workload = GenerateWorkload(wc);
    DataConfig dc;
    dc.rows_per_relation = 20;
    dc.domain_size = 6;
    dc.seed = seed + 100;
    const Database base = GenerateBaseData(workload.query, workload.views, dc);
    view_db = MaterializeViews(workload.views, base);
  }
};

const BenchSetup& Setup() {
  static const BenchSetup* setup = new BenchSetup(3);
  return *setup;
}

ViewPlanner::Options ColdPlannerOptions() {
  ViewPlanner::Options options;
  options.enable_cache = false;  // every request pays the full plan
  options.core_cover.num_threads = 1;
  return options;
}

// Baseline: the naked planner call the service wraps.
void BM_DirectPlan(benchmark::State& state) {
  const BenchSetup& setup = Setup();
  ViewPlanner planner(setup.workload.views, setup.view_db,
                      ColdPlannerOptions());
  for (auto _ : state) {
    const auto result = planner.Plan(setup.workload.query, CostModel::kM2);
    benchmark::DoNotOptimize(result.status);
  }
}
BENCHMARK(BM_DirectPlan)->Unit(benchmark::kMicrosecond);

// The same call through a single-worker service: Submit + queue handoff +
// worker Plan + promise fulfilment. (overhead = this / BM_DirectPlan - 1.)
void BM_ServicePlan(benchmark::State& state) {
  const BenchSetup& setup = Setup();
  ViewPlanner planner(setup.workload.views, setup.view_db,
                      ColdPlannerOptions());
  PlanningService::Options options;
  options.num_workers = 1;
  PlanningService service(&planner, options);
  for (auto _ : state) {
    const auto response = service.Plan(setup.workload.query, CostModel::kM2);
    benchmark::DoNotOptimize(response.status);
  }
  service.Shutdown();
}
BENCHMARK(BM_ServicePlan)->UseRealTime()->Unit(benchmark::kMicrosecond);

// Steady-state overhead at concurrency 1: a window of in-flight requests
// keeps the single worker continuously busy, so the blocking round-trip's
// context-switch wake latency (large and noisy on a 1-core container) is
// amortized away and what remains is the true per-request service cost —
// queue ops, promise/future, stats. This per-request time vs BM_DirectPlan
// is the < 5% acceptance comparison.
void BM_ServicePlanPipelined(benchmark::State& state) {
  const BenchSetup& setup = Setup();
  ViewPlanner planner(setup.workload.views, setup.view_db,
                      ColdPlannerOptions());
  PlanningService::Options options;
  options.num_workers = 1;
  options.max_queue = 16;
  PlanningService service(&planner, options);
  constexpr size_t kWindow = 8;
  for (auto _ : state) {
    std::vector<std::future<PlanningService::PlanResponse>> futures;
    futures.reserve(kWindow);
    for (size_t i = 0; i < kWindow; ++i) {
      PlanningService::PlanRequest request;
      request.query = setup.workload.query;
      request.options.model = CostModel::kM2;
      futures.push_back(service.Submit(std::move(request)));
    }
    for (auto& f : futures) {
      const auto response = f.get();
      benchmark::DoNotOptimize(response.status);
    }
  }
  service.Shutdown();
  state.counters["sec_per_request"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kWindow),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_ServicePlanPipelined)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Unpaced batch against a small bounded queue: achieved throughput and the
// admission-control outcome mix at 1/2/4 workers.
void BM_ServiceThroughput(benchmark::State& state) {
  const BenchSetup& setup = Setup();
  const size_t workers = static_cast<size_t>(state.range(0));
  constexpr size_t kBatch = 64;

  // Renamed variants planned once to warm the cache; the timed loop then
  // measures the service machinery plus cache-hit re-costing, which is the
  // steady state an overloaded service actually runs in.
  std::vector<ConjunctiveQuery> batch;
  batch.reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    Substitution renaming;
    batch.push_back(RenameVariablesApart(setup.workload.query,
                                         "b" + std::to_string(i), &renaming));
  }
  ViewPlanner::Options planner_options;
  planner_options.core_cover.num_threads = 1;
  ViewPlanner planner(setup.workload.views, setup.view_db, planner_options);
  (void)planner.Plan(setup.workload.query, CostModel::kM2);

  PlanningService::Options options;
  options.num_workers = workers;
  options.max_queue = 16;
  PlanningService service(&planner, options);

  uint64_t completed = 0;
  uint64_t rejected = 0;
  for (auto _ : state) {
    std::vector<std::future<PlanningService::PlanResponse>> futures;
    futures.reserve(kBatch);
    for (const ConjunctiveQuery& q : batch) {
      PlanningService::PlanRequest request;
      request.query = q;
      request.options.model = CostModel::kM2;
      futures.push_back(service.Submit(std::move(request)));
    }
    for (auto& f : futures) {
      const auto response = f.get();
      if (response.status == PlanningService::ServiceStatus::kOk) {
        ++completed;
      } else {
        ++rejected;
      }
    }
  }
  service.Shutdown();
  const double total =
      static_cast<double>(state.iterations()) * static_cast<double>(kBatch);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["qps"] = benchmark::Counter(
      total, benchmark::Counter::kIsRate);
  state.counters["rejected_share"] =
      total > 0 ? static_cast<double>(rejected) / total : 0;
  state.counters["completed"] = static_cast<double>(completed);
}
BENCHMARK(BM_ServiceThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()  // the work happens on worker threads; rate counters
                     // must divide by wall time, not this thread's CPU time
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vbr

BENCHMARK_MAIN();
