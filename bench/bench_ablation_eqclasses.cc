// Ablation of Section 5.2's concise representation: CoreCover with and
// without (a) grouping views into equivalence classes and (b) grouping view
// tuples by tuple-core. The paper attributes CoreCover's flat scaling to
// these two groupings; this bench quantifies each one's contribution.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "rewrite/core_cover.h"

namespace vbr {
namespace {

void RunAblation(benchmark::State& state, bool group_views,
                 bool group_tuples) {
  const size_t num_views = static_cast<size_t>(state.range(0));
  const auto& batch =
      bench_util::WorkloadBatch(QueryShape::kStar, num_views, 0);
  CoreCoverOptions options;
  options.group_views = group_views;
  options.group_view_tuples = group_tuples;
  size_t rewritings = 0;
  for (auto _ : state) {
    rewritings = 0;
    for (const Workload& w : batch) {
      const auto result = CoreCover(w.query, w.views, options);
      benchmark::DoNotOptimize(result.rewritings.size());
      rewritings += result.rewritings.size();
    }
  }
  state.counters["views"] = static_cast<double>(num_views);
  state.counters["rewritings"] = static_cast<double>(rewritings);
}

void BM_GroupBoth(benchmark::State& state) { RunAblation(state, true, true); }
void BM_GroupViewsOnly(benchmark::State& state) {
  RunAblation(state, true, false);
}
void BM_GroupTuplesOnly(benchmark::State& state) {
  RunAblation(state, false, true);
}
void BM_GroupNeither(benchmark::State& state) {
  RunAblation(state, false, false);
}

#define VBR_ABLATION_ARGS \
  ->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond)

BENCHMARK(BM_GroupBoth) VBR_ABLATION_ARGS;
BENCHMARK(BM_GroupViewsOnly) VBR_ABLATION_ARGS;
BENCHMARK(BM_GroupTuplesOnly) VBR_ABLATION_ARGS;
BENCHMARK(BM_GroupNeither) VBR_ABLATION_ARGS;

}  // namespace
}  // namespace vbr

BENCHMARK_MAIN();
