// End-to-end saturation curve for the network front end.
//
// Starts an in-process vbr stack — generated workload, ViewPlanner,
// PlanningService, PlanServer on an ephemeral loopback port — and drives it
// with the shared open-loop load driver (net/load_driver.h) at a sweep of
// offered rates and connection counts.  For each cell it reports achieved
// qps, p50/p99 latency, and the shed+rejected share, which is the
// saturation table recorded in EXPERIMENTS.md "Serving plans over the
// wire": below saturation the achieved rate tracks the offered rate and
// p99 stays flat; past it, admission control sheds load and p99 plateaus
// at the deadline instead of growing without bound.
//
// A plain main (not google-benchmark): each cell is one timed open-loop
// run, and the driver already measures everything we report.
//
// Usage: bench_service_net [--requests N] [--workers N] [--queue N]
//                          [--deadline-ms MS]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cq/rename.h"
#include "cq/substitution.h"
#include "engine/materialize.h"
#include "net/load_driver.h"
#include "planner/planner.h"
#include "planner/service.h"
#include "server/plan_server.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

int Run(size_t requests_per_cell, size_t workers, size_t max_queue,
        double deadline_ms) {
  // Same workload shape as bench_service: a star query over 50 views, big
  // enough that a cold plan costs ~28 ms.  The cache is enabled and warmed,
  // so the steady state is cache-hit re-costing and re-certification (what
  // a warm service runs) — roughly 25 ms/plan, which puts the two-worker
  // capacity near 80 plans/s and makes the sweep below bracket saturation.
  WorkloadConfig wc;
  wc.shape = QueryShape::kStar;
  wc.num_query_subgoals = 8;
  wc.num_views = 50;
  wc.seed = 3;
  Workload workload = GenerateWorkload(wc);
  DataConfig dc;
  dc.rows_per_relation = 20;
  dc.domain_size = 6;
  dc.seed = 103;
  const Database base = GenerateBaseData(workload.query, workload.views, dc);

  ViewPlanner::Options planner_options;
  planner_options.core_cover.num_threads = 1;
  ViewPlanner planner(workload.views, MaterializeViews(workload.views, base),
                      planner_options);
  (void)planner.Plan(workload.query, CostModel::kM2);  // warm the cache

  // 16 renamed variants of the query: isomorphic, so they share one plan
  // cache entry, but they exercise the full wire + parse + admission path.
  std::vector<std::string> queries;
  for (size_t i = 0; i < 16; ++i) {
    Substitution renaming;
    queries.push_back(
        RenameVariablesApart(workload.query, "N" + std::to_string(i),
                             &renaming)
            .ToString());
  }

  // Rates chosen around the ~80 plans/s two-worker capacity: 25 and 50 sit
  // below it (no shedding expected), 200 is past the knee, flood shows the
  // admission-control plateau.
  const size_t connection_counts[] = {1, 4, 16};
  const double qps_sweep[] = {25, 50, 200, 0 /* flood */};

  std::printf(
      "# bench_service_net: workers=%zu queue=%zu deadline_ms=%.0f "
      "requests/cell=%zu\n",
      workers, max_queue, deadline_ms, requests_per_cell);
  std::printf(
      "%-6s %-10s %10s %10s %10s %8s %8s %8s %8s\n", "conns", "offered",
      "achieved", "p50_ms", "p99_ms", "ok", "rej", "shed", "shed%");
  for (const size_t conns : connection_counts) {
    for (const double qps : qps_sweep) {
      // A fresh service + server per cell: cells must not contaminate each
      // other through the circuit breaker's state or the serve-time EWMA
      // (a cell that follows a flood would otherwise start with the
      // breaker open and shed traffic it could easily serve).  The warmed
      // planner (and its plan cache) is shared — that is the steady state
      // being measured.
      PlanningService::Options service_options;
      service_options.num_workers = workers;
      service_options.max_queue = max_queue;
      PlanningService service(&planner, service_options);
      server::PlanServerOptions server_options;
      server::PlanServer server(&service, server_options);
      std::string error;
      if (!server.Start(&error)) {
        std::fprintf(stderr, "bench_service_net: start: %s\n", error.c_str());
        return 1;
      }

      net::LoadDriverOptions load;
      load.port = server.binary_port();
      load.connections = conns;
      load.qps = qps;
      // Low-rate cells would take minutes at the full request count; cap
      // each paced cell near ~6 seconds of sending while keeping at least
      // 150 samples for the percentiles.  Flood cells use the full count.
      load.total_requests =
          qps > 0 ? std::min(requests_per_cell,
                             std::max<size_t>(150, static_cast<size_t>(qps) * 6))
                  : requests_per_cell;
      load.queries = queries;
      load.request.model = CostModel::kM2;
      load.request.deadline_ms = deadline_ms;
      net::LoadReport report;
      if (!net::RunLoad(load, &report, &error)) {
        std::fprintf(stderr, "bench_service_net: %s\n", error.c_str());
        return 1;
      }
      const double shed_share =
          report.received > 0
              ? 100.0 * static_cast<double>(report.shed_or_rejected()) /
                    static_cast<double>(report.received)
              : 0;
      char offered[32];
      if (qps > 0) {
        std::snprintf(offered, sizeof(offered), "%.0f", qps);
      } else {
        std::snprintf(offered, sizeof(offered), "flood");
      }
      std::printf("%-6zu %-10s %10.0f %10.2f %10.2f %8zu %8zu %8zu %7.1f%%\n",
                  conns, offered, report.achieved_qps, report.p50_ms,
                  report.p99_ms, report.ok(), report.by_status[1],
                  report.by_status[2], shed_share);
      if (report.lost != 0 || report.duplicated != 0) {
        std::fprintf(stderr,
                     "bench_service_net: FAIL lost=%zu duplicated=%zu\n",
                     report.lost, report.duplicated);
        return 2;
      }
      server.Stop();
      service.Shutdown();
    }
  }
  return 0;
}

}  // namespace
}  // namespace vbr

int main(int argc, char** argv) {
  size_t requests = 2000;
  size_t workers = 2;
  size_t max_queue = 64;
  double deadline_ms = 250;
  for (int i = 1; i < argc; ++i) {
    auto NeedsValue = [&]() -> const char* {
      if (++i >= argc) {
        std::fprintf(stderr, "bench_service_net: flag needs a value\n");
        std::exit(1);
      }
      return argv[i];
    };
    if (std::strcmp(argv[i], "--requests") == 0) {
      requests = static_cast<size_t>(std::atoi(NeedsValue()));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      workers = static_cast<size_t>(std::atoi(NeedsValue()));
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      max_queue = static_cast<size_t>(std::atoi(NeedsValue()));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      deadline_ms = std::atof(NeedsValue());
    } else {
      std::fprintf(stderr, "bench_service_net: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  return vbr::Run(requests, workers, max_queue, deadline_ms);
}
