// Ablation: exact (measured) vs estimated (System-R style statistics) M2
// join ordering. Exact measurement evaluates every subset join — perfect
// plans, heavy planning; the estimator plans from per-column statistics.
// Counters report the planning-quality gap: the TRUE cost of the
// estimator's chosen order over the optimum, under uniform and skewed
// data. Skew breaks the uniformity assumption and widens the gap — the
// classic optimizer trade-off, quantified on this engine.

#include <benchmark/benchmark.h>

#include "cost/estimator.h"
#include "cost/m2_optimizer.h"
#include "engine/materialize.h"
#include "rewrite/core_cover.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

struct Scenario {
  Database view_db;
  std::vector<ConjunctiveQuery> rewritings;
};

Scenario MakeScenario(double skew) {
  WorkloadConfig wc;
  wc.shape = QueryShape::kChain;
  wc.num_query_subgoals = 4;
  wc.num_predicates = 4;
  wc.num_views = 12;
  wc.seed = 33;
  const Workload w = GenerateWorkload(wc);
  DataConfig dc;
  dc.rows_per_relation = 120;
  dc.domain_size = 20;
  dc.skew = skew;
  dc.seed = 77;
  const Database base = GenerateBaseData(w.query, w.views, dc);
  Scenario s;
  s.view_db = MaterializeViews(w.views, base);
  // Chain rewritings of 2-4 subgoals; a handful suffices for the ablation
  // (exact costing of wide disconnected subsets is deliberately avoided —
  // it joins cross products).
  for (const auto& p : CoreCoverStar(w.query, w.views).rewritings) {
    if (p.num_subgoals() >= 2 && s.rewritings.size() < 6) {
      s.rewritings.push_back(p);
    }
  }
  return s;
}

void BM_ExactPlanning(benchmark::State& state) {
  const Scenario s = MakeScenario(state.range(0) == 1 ? 2.5 : 0.0);
  size_t total = 0;
  for (auto _ : state) {
    total = 0;
    for (const auto& p : s.rewritings) {
      total += OptimizeOrderM2(p, s.view_db).cost;
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["skewed"] = static_cast<double>(state.range(0));
  state.counters["optimal_cost_sum"] = static_cast<double>(total);
}

void BM_EstimatedPlanning(benchmark::State& state) {
  const Scenario s = MakeScenario(state.range(0) == 1 ? 2.5 : 0.0);
  const StatsCatalog catalog = StatsCatalog::Collect(s.view_db);
  std::vector<std::vector<size_t>> chosen_orders;
  for (auto _ : state) {
    chosen_orders.clear();
    for (const auto& p : s.rewritings) {
      chosen_orders.push_back(OptimizeOrderM2Estimated(p, catalog).plan.order);
    }
    benchmark::DoNotOptimize(chosen_orders.size());
  }
  // Plan quality, measured outside the timed region.
  size_t estimated_true_cost = 0;
  size_t optimal_cost = 0;
  for (size_t i = 0; i < s.rewritings.size(); ++i) {
    estimated_true_cost +=
        CostOfOrderM2(s.rewritings[i], chosen_orders[i], s.view_db);
    optimal_cost += OptimizeOrderM2(s.rewritings[i], s.view_db).cost;
  }
  state.counters["skewed"] = static_cast<double>(state.range(0));
  state.counters["true_cost_of_estimated_plans"] =
      static_cast<double>(estimated_true_cost);
  state.counters["cost_vs_optimal"] =
      optimal_cost == 0 ? 1.0
                        : static_cast<double>(estimated_true_cost) /
                              static_cast<double>(optimal_cost);
}

BENCHMARK(BM_ExactPlanning)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EstimatedPlanning)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vbr

BENCHMARK_MAIN();
