// Cost model M3 (Section 6, Example 6.1): supplementary-relation dropping
// vs the paper's generalized (renaming-based) heuristic, on Figure 5's
// database scaled by a factor f (f copies of the s self-loops and t edges).
// GSR's first intermediate stays at one tuple while SR's grows linearly
// with f, so the cost ratio approaches 2x as f grows — the paper's
// qualitative claim, made quantitative.

#include <benchmark/benchmark.h>

#include "cost/supplementary.h"
#include "cq/parser.h"
#include "engine/materialize.h"

namespace vbr {
namespace {

struct Scenario {
  ConjunctiveQuery query;
  ViewSet views;
  Database view_db;
  ConjunctiveQuery p2;
};

Scenario MakeScenario(int scale) {
  Database base;
  base.AddRow("r", {1, 1});
  for (Value i = 0; i < scale; ++i) {
    const Value node = 2 * (i + 1);
    base.AddRow("s", {node, node});
    base.AddRow("t", {2 * i + 1, node});
  }
  Scenario s;
  s.query = MustParseQuery("q(A) :- r(A,A), t(A,B), s(B,B)");
  s.views = MustParseProgram(R"(
    v1(A,B) :- r(A,A), s(B,B)
    v2(A,B) :- t(A,B), s(B,B)
  )");
  s.view_db = MaterializeViews(s.views, base);
  s.p2 = MustParseQuery("q(A) :- v1(A,B), v2(A,B)");
  return s;
}

void BM_M3_SrVsGsr(benchmark::State& state) {
  const Scenario s = MakeScenario(static_cast<int>(state.range(0)));
  size_t sr_cost = 0;
  size_t gsr_cost = 0;
  for (auto _ : state) {
    const auto cmp = CompareM3Strategies(s.p2, s.query, s.views, s.view_db);
    benchmark::DoNotOptimize(cmp.gsr_cost);
    sr_cost = cmp.sr_cost;
    gsr_cost = cmp.gsr_cost;
  }
  state.counters["scale"] = static_cast<double>(state.range(0));
  state.counters["sr_cost"] = static_cast<double>(sr_cost);
  state.counters["gsr_cost"] = static_cast<double>(gsr_cost);
  state.counters["sr_over_gsr"] =
      static_cast<double>(sr_cost) / static_cast<double>(gsr_cost);
}

// The renaming test itself (an expansion-equivalence check per candidate
// variable) is the heuristic's price; measure it alone.
void BM_M3_GeneralizedDropsOnly(benchmark::State& state) {
  const Scenario s = MakeScenario(4);
  for (auto _ : state) {
    const auto drops = GeneralizedDrops(s.p2, s.query, s.views, {0, 1});
    benchmark::DoNotOptimize(drops.drop_after.size());
  }
}

BENCHMARK(BM_M3_SrVsGsr)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_M3_GeneralizedDropsOnly)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vbr

BENCHMARK_MAIN();
