// The paper's third workload shape: randomly generated queries (after
// Steinbrunn et al.). Same protocol as Figures 6/8 — time for CoreCover to
// produce all GMRs of 8-subgoal random queries as the number of views
// grows — completing the shape coverage of Section 7.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "rewrite/core_cover.h"

namespace vbr {
namespace {

void BM_Random_AllDistinguished(benchmark::State& state) {
  const size_t num_views = static_cast<size_t>(state.range(0));
  const auto& batch =
      bench_util::WorkloadBatch(QueryShape::kRandom, num_views, 0);
  size_t gmrs = 0;
  for (auto _ : state) {
    gmrs = 0;
    for (const Workload& w : batch) {
      const auto result = CoreCover(w.query, w.views);
      benchmark::DoNotOptimize(result.rewritings.size());
      gmrs += result.rewritings.size();
    }
  }
  state.counters["views"] = static_cast<double>(num_views);
  state.counters["avg_gmrs"] =
      static_cast<double>(gmrs) / static_cast<double>(batch.size());
  state.counters["sec_per_query"] = benchmark::Counter(
      static_cast<double>(batch.size()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

BENCHMARK(BM_Random_AllDistinguished)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Arg(600)->Arg(800)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vbr

BENCHMARK_MAIN();
