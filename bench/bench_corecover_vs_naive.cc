// Ablation: CoreCover vs the naive Theorem 3.1 enumeration. Both search the
// same space (combinations of view tuples) and find the same GMRs, but the
// naive algorithm tests combinations with containment mappings while
// CoreCover reduces the problem to set covering over tuple-cores. The gap
// widens as views (hence view tuples) grow.

#include <benchmark/benchmark.h>

#include "baseline/naive_enum.h"
#include "bench/bench_util.h"
#include "rewrite/core_cover.h"

namespace vbr {
namespace {

void BM_CoreCover(benchmark::State& state) {
  const size_t num_views = static_cast<size_t>(state.range(0));
  const auto& batch =
      bench_util::WorkloadBatch(QueryShape::kChain, num_views, 0);
  size_t min_size = 0;
  for (auto _ : state) {
    for (const Workload& w : batch) {
      const auto result = CoreCover(w.query, w.views);
      benchmark::DoNotOptimize(result.has_rewriting);
      min_size = result.stats.minimum_cover_size;
    }
  }
  state.counters["views"] = static_cast<double>(num_views);
  state.counters["min_size"] = static_cast<double>(min_size);
}

void BM_NaiveEnumeration(benchmark::State& state) {
  const size_t num_views = static_cast<size_t>(state.range(0));
  const auto& batch =
      bench_util::WorkloadBatch(QueryShape::kChain, num_views, 0);
  size_t combinations = 0;
  for (auto _ : state) {
    combinations = 0;
    for (const Workload& w : batch) {
      const auto result = NaiveEnumerateGmrs(w.query, w.views);
      benchmark::DoNotOptimize(result.has_rewriting);
      combinations += result.combinations_tested;
    }
  }
  state.counters["views"] = static_cast<double>(num_views);
  state.counters["combinations_tested"] = static_cast<double>(combinations);
}

// The naive baseline is exponential in view tuples: keep its sweep small.
BENCHMARK(BM_CoreCover)
    ->Arg(10)->Arg(20)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NaiveEnumeration)
    ->Arg(10)->Arg(20)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vbr

BENCHMARK_MAIN();
