// Cost model M2 (Section 5): the subset-DP join-order optimizer, and the
// paper's claim that ADDING a view subgoal can reduce cost. The sweep
// controls the selectivity of v3 (how many stores actually match the
// anderson pattern): when v3 is selective, rewriting P3 = P2 + v3 wins;
// as v3 grows towards v2's size, P2 wins back — the crossover the paper's
// discussion of rewritings P2/P3 predicts.

#include <benchmark/benchmark.h>

#include "cost/filter_advisor.h"
#include "cost/m2_optimizer.h"
#include "cq/parser.h"
#include "engine/materialize.h"

namespace vbr {
namespace {

struct Scenario {
  Database view_db;
  ConjunctiveQuery p2;
  ConjunctiveQuery p3;
};

// matching_parts controls |v3|: the number of parts that join with
// anderson's car/loc pairs.
Scenario MakeScenario(int matching_parts) {
  Database base;
  const Value a = EncodeConstant(Const("a"));
  for (Value m = 0; m < 20; ++m) base.AddRow("car", {m, a});
  for (Value c = 0; c < 20; ++c) base.AddRow("loc", {a, 100 + c});
  for (Value i = 0; i < 1000; ++i) {
    base.AddRow("part", {2000 + i, 500 + (i % 100), 900 + (i % 50)});
  }
  for (Value i = 0; i < matching_parts; ++i) {
    base.AddRow("part", {3000 + i, i % 20, 100 + (i % 20)});
  }
  const ViewSet views = MustParseProgram(R"(
    v1(M,D,C) :- car(M,D), loc(D,C)
    v2(S,M,C) :- part(S,M,C)
    v3(S) :- car(M,a), loc(a,C), part(S,M,C)
  )");
  Scenario s{MaterializeViews(views, base),
             MustParseQuery("q1(S,C) :- v1(M,a,C), v2(S,M,C)"),
             MustParseQuery("q1(S,C) :- v3(S), v1(M,a,C), v2(S,M,C)")};
  return s;
}

void BM_M2_P2_vs_P3(benchmark::State& state) {
  const Scenario s = MakeScenario(static_cast<int>(state.range(0)));
  size_t cost_p2 = 0;
  size_t cost_p3 = 0;
  for (auto _ : state) {
    cost_p2 = OptimizeOrderM2(s.p2, s.view_db).cost;
    cost_p3 = OptimizeOrderM2(s.p3, s.view_db).cost;
    benchmark::DoNotOptimize(cost_p2 + cost_p3);
  }
  state.counters["matching_parts"] = static_cast<double>(state.range(0));
  state.counters["cost_P2"] = static_cast<double>(cost_p2);
  state.counters["cost_P3_with_filter"] = static_cast<double>(cost_p3);
  state.counters["filter_wins"] = cost_p3 < cost_p2 ? 1 : 0;
}

// Raw optimizer throughput as the rewriting widens (subset DP is 2^n).
void BM_M2_OptimizerScaling(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Database db;
  std::string body;
  for (size_t i = 0; i < n; ++i) {
    const std::string v = "u" + std::to_string(i);
    for (Value r = 0; r < 30; ++r) {
      db.AddRow(v, {r % 7, (r + static_cast<Value>(i)) % 7});
    }
    if (i > 0) body += ", ";
    body += v + "(X" + std::to_string(i) + ",X" + std::to_string(i + 1) + ")";
  }
  const ConjunctiveQuery p =
      MustParseQuery("q(X0,X" + std::to_string(n) + ") :- " + body);
  for (auto _ : state) {
    const auto result = OptimizeOrderM2(p, db);
    benchmark::DoNotOptimize(result.cost);
  }
  state.counters["subgoals"] = static_cast<double>(n);
}

BENCHMARK(BM_M2_P2_vs_P3)
    ->Arg(5)->Arg(20)->Arg(100)->Arg(400)->Arg(1000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_M2_OptimizerScaling)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vbr

BENCHMARK_MAIN();
