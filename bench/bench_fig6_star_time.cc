// Figure 6: time for CoreCover to generate ALL globally-minimal rewritings
// of 8-subgoal STAR queries as the number of views grows to 1000, with (a)
// all variables distinguished and (b) one nondistinguished variable.
//
// The paper reports a flat curve (bounded around 0.5s on 2001 hardware in
// Java); the reproduction should likewise stay flat in the number of views
// because views and view tuples collapse into equivalence classes. Each
// benchmark iteration runs a whole batch of queries; per-query time is
// reported as the "ms_per_query" counter.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "rewrite/core_cover.h"

namespace vbr {
namespace {

void RunFigure6(benchmark::State& state, size_t nondistinguished) {
  const size_t num_views = static_cast<size_t>(state.range(0));
  const size_t num_threads = static_cast<size_t>(state.range(1));
  const auto& batch = bench_util::WorkloadBatch(QueryShape::kStar, num_views,
                                                nondistinguished);
  CoreCoverOptions options;
  options.num_threads = num_threads;
  size_t gmrs = 0;
  size_t with_rewriting = 0;
  for (auto _ : state) {
    gmrs = 0;
    with_rewriting = 0;
    for (const Workload& w : batch) {
      const auto result = CoreCover(w.query, w.views, options);
      benchmark::DoNotOptimize(result.rewritings.size());
      gmrs += result.rewritings.size();
      with_rewriting += result.has_rewriting ? 1 : 0;
    }
  }
  state.counters["views"] = static_cast<double>(num_views);
  state.counters["threads"] = static_cast<double>(num_threads);
  state.counters["avg_gmrs"] =
      static_cast<double>(gmrs) / static_cast<double>(batch.size());
  state.counters["queries_with_rewriting"] =
      static_cast<double>(with_rewriting);
  state.counters["sec_per_query"] = benchmark::Counter(
      static_cast<double>(batch.size()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void BM_Fig6a_Star_AllDistinguished(benchmark::State& state) {
  RunFigure6(state, 0);
}
void BM_Fig6b_Star_OneNondistinguished(benchmark::State& state) {
  RunFigure6(state, 1);
}

// Args are {num_views, num_threads}. The views sweep (the paper's x-axis)
// runs serially; the threads sweep at the largest configuration measures the
// parallel-pipeline speedup.
BENCHMARK(BM_Fig6a_Star_AllDistinguished)
    ->ArgsProduct({{50, 100, 200, 400, 600, 800, 1000}, {1}})
    ->ArgsProduct({{1000}, {2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig6b_Star_OneNondistinguished)
    ->ArgsProduct({{50, 100, 200, 400, 600, 800, 1000}, {1}})
    ->ArgsProduct({{1000}, {2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vbr

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Process-wide pipeline metrics accumulated across every run above.
  std::fprintf(stderr, "\n--- metrics snapshot ---\n%s",
               vbr::MetricsRegistry::Global().Snapshot().ToText().c_str());
  return 0;
}
