// Microbenchmark of the containment-mapping machinery — the inner loop of
// everything in the library (equivalence tests, minimization, the
// rewriting checks). Chains and stars of growing length, plus query
// minimization with redundant subgoals.

#include <benchmark/benchmark.h>

#include <string>

#include "cq/containment.h"
#include "cq/parser.h"

namespace vbr {
namespace {

ConjunctiveQuery Chain(size_t n, const std::string& var_prefix) {
  std::string body;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) body += ", ";
    body += "e(" + var_prefix + std::to_string(i) + "," + var_prefix +
            std::to_string(i + 1) + ")";
  }
  return MustParseQuery("q(" + var_prefix + "0," + var_prefix +
                        std::to_string(n) + ") :- " + body);
}

ConjunctiveQuery Star(size_t n) {
  std::string body;
  std::string head = "q(C";
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) body += ", ";
    body += "p" + std::to_string(i % 4) + "(C,X" + std::to_string(i) + ")";
    head += ",X" + std::to_string(i);
  }
  return MustParseQuery(head + ") :- " + body);
}

void BM_ChainSelfContainment(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto q1 = Chain(n, "A");
  const auto q2 = Chain(n, "B");
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsContainedIn(q1, q2));
  }
  state.counters["subgoals"] = static_cast<double>(n);
}

void BM_StarEquivalence(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto q = Star(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AreEquivalent(q, q));
  }
  state.counters["subgoals"] = static_cast<double>(n);
}

void BM_MinimizeWithRedundancy(benchmark::State& state) {
  // A chain with each subgoal duplicated under fresh variables: n redundant
  // subgoals fold away.
  const size_t n = static_cast<size_t>(state.range(0));
  std::string body;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) body += ", ";
    body += "e(X" + std::to_string(i) + ",X" + std::to_string(i + 1) + ")";
    body += ", e(Y" + std::to_string(i) + ",X" + std::to_string(i + 1) + ")";
  }
  const auto q = MustParseQuery("q(X0,X" + std::to_string(n) + ") :- " + body);
  size_t out_size = 0;
  for (auto _ : state) {
    const auto m = Minimize(q);
    benchmark::DoNotOptimize(out_size = m.num_subgoals());
  }
  state.counters["in_subgoals"] = static_cast<double>(2 * n);
  state.counters["out_subgoals"] = static_cast<double>(out_size);
}

void BM_NegativeContainment(benchmark::State& state) {
  // Chain into a chain one shorter: no mapping exists; measures full
  // backtracking exhaustion.
  const size_t n = static_cast<size_t>(state.range(0));
  const auto q1 = Chain(n, "A");
  const auto q2 = Chain(n - 1, "B");
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsContainedIn(q2, q1));
  }
  state.counters["subgoals"] = static_cast<double>(n);
}

BENCHMARK(BM_ChainSelfContainment)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StarEquivalence)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MinimizeWithRedundancy)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_NegativeContainment)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace vbr

BENCHMARK_MAIN();
