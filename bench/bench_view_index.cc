// Catalog-scale benchmark: planning latency vs view-catalog size, with the
// indexed candidate stage on (BM_PlanIndexed) and off (BM_PlanFullScan).
//
// The scenario is GenerateMassiveCatalog: a Zipf-skewed predicate pool
// (hot relations dominate queries, most views touch cold ones) at
// 10^2..10^5 views, the regime ISSUE 9 targets. With the index off every
// plan walks — and, worse, per-view Minimizes — the whole catalog, so
// latency grows linearly with catalog size. With it on, the candidate set
// is whatever the postings intersection returns, so latency tracks the
// query's hot predicates, not the catalog. The `considered_ratio` counter
// (candidate views / catalog views, straight from CoreCoverStats) is the
// sub-linearity witness that scripts/check_catalog_scale.sh gates on.
//
// Cache is off (every Plan pays a full run) and threads = 1 so the
// numbers isolate the candidate stage. M1 keeps costing trivial; the
// instance database is empty, which is fine because CoreCover plans
// against the canonical database it builds itself.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "planner/planner.h"
#include "workload/generator.h"

namespace vbr {
namespace {

constexpr size_t kQueryBatch = 32;

MassiveCatalogConfig ScenarioConfig(size_t catalog_views) {
  MassiveCatalogConfig config;
  config.num_views = catalog_views;
  // Widen the pool with the catalog (but never below 64): a fixed tiny
  // pool would make every view a candidate at every scale and measure
  // nothing. catalog/16 models a large schema where any one query's hot
  // predicates cover a few percent of the views.
  config.num_predicates = std::max<size_t>(64, catalog_views / 16);
  config.predicate_zipf_s = 1.0;
  config.seed = 7;
  return config;
}

void RunCatalogScale(benchmark::State& state, bool use_index) {
  const size_t catalog_views = static_cast<size_t>(state.range(0));
  const MassiveCatalogConfig config = ScenarioConfig(catalog_views);
  const Workload workload = GenerateMassiveCatalog(config);
  const std::vector<ConjunctiveQuery> queries =
      GenerateCatalogQueries(config, kQueryBatch, /*seed=*/1234);

  ViewPlanner::Options options;
  options.enable_cache = false;
  options.core_cover.num_threads = 1;
  options.core_cover.use_view_index = use_index;
  ViewPlanner planner(workload.views, Database(), options);

  size_t next = 0;
  double considered = 0, planned = 0;
  for (auto _ : state) {
    const ViewPlanner::PlanResult result =
        planner.Plan(queries[next], CostModel::kM1);
    benchmark::DoNotOptimize(result.status);
    considered += static_cast<double>(result.stats.num_candidate_views);
    planned += 1;
    next = (next + 1) % queries.size();
  }
  const double total_catalog = static_cast<double>(workload.views.size());
  state.counters["catalog_views"] = total_catalog;
  state.counters["considered_ratio"] =
      planned == 0 ? 0.0 : considered / (planned * total_catalog);
  state.counters["sec_per_query"] = benchmark::Counter(
      1.0, benchmark::Counter::kIsIterationInvariantRate |
               benchmark::Counter::kInvert);
}

void BM_PlanIndexed(benchmark::State& state) {
  RunCatalogScale(state, /*use_index=*/true);
}
void BM_PlanFullScan(benchmark::State& state) {
  RunCatalogScale(state, /*use_index=*/false);
}

// Arg = number of RANDOM catalog views (coverage singletons ride on top).
// The 10^6 point exists for the nightly catalog soak (see
// scripts/check_catalog_scale.sh with VBR_CATALOG_SOAK=1); the regular
// smoke filter never selects it, so day-to-day runs stay fast.
BENCHMARK(BM_PlanIndexed)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
// The full scan is linear in the catalog; 10^5 points take long enough
// that the 10^4 cap keeps CI smoke runs bounded (EXPERIMENTS.md records a
// one-off 10^5 comparison).
BENCHMARK(BM_PlanFullScan)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vbr

BENCHMARK_MAIN();
