// Engine ablation: backtracking join vs Yannakakis semijoin reduction on
// acyclic (chain) queries that are adversarial for any join order: every
// relation has the same size and fanout 3, but the middle relation's values
// live in a disjoint range, so the whole join is empty. Backtracking from
// either end explores ~3^(k/2) dead paths; the two semijoin sweeps empty
// every node relation in linear time.

#include <benchmark/benchmark.h>

#include <string>

#include "cq/parser.h"
#include "engine/acyclic.h"
#include "engine/evaluator.h"

namespace vbr {
namespace {

constexpr Value kDomain = 60;

struct Scenario {
  Database db;
  ConjunctiveQuery query;
};

Scenario MakeScenario(size_t chain_length) {
  Scenario s;
  std::string body;
  const size_t mid = chain_length / 2;
  for (size_t i = 0; i < chain_length; ++i) {
    const std::string rel = "e" + std::to_string(i);
    // Offset 0 for live values; the middle relation lives at 1000+ so no
    // chain can cross it.
    const Value offset = (i == mid) ? 1000 : 0;
    for (Value j = 0; j < kDomain; ++j) {
      for (Value d = 0; d < 3; ++d) {
        s.db.AddRow(rel, {offset + j, offset + (3 * j + d) % kDomain});
      }
    }
    if (i > 0) body += ", ";
    body += rel + "(X" + std::to_string(i) + ",X" + std::to_string(i + 1) +
            ")";
  }
  s.query = MustParseQuery("q(X0,X" + std::to_string(chain_length) +
                           ") :- " + body);
  return s;
}

void BM_BacktrackingJoin(benchmark::State& state) {
  const Scenario s = MakeScenario(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    rows = EvaluateQuery(s.query, s.db).size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["chain_length"] = static_cast<double>(state.range(0));
  state.counters["answer_rows"] = static_cast<double>(rows);
}

void BM_YannakakisReduceThenJoin(benchmark::State& state) {
  const Scenario s = MakeScenario(static_cast<size_t>(state.range(0)));
  size_t rows = 0;
  for (auto _ : state) {
    rows = EvaluateAcyclicQuery(s.query, s.db).size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["chain_length"] = static_cast<double>(state.range(0));
  state.counters["answer_rows"] = static_cast<double>(rows);
}

BENCHMARK(BM_BacktrackingJoin)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_YannakakisReduceThenJoin)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vbr

BENCHMARK_MAIN();
