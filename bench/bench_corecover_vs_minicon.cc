// Section 4.3 / Example 4.2: CoreCover vs MiniCon on the query family
//
//   q(X,Y) :- a1(X,Z1), b1(Z1,Y), ..., ak(X,Zk), bk(Zk,Y)
//
// with one view identical to the query plus k-1 pairwise views. CoreCover
// emits the single-literal GMR; MiniCon's disjoint minimal MCDs force every
// rewriting to k literals. Counters report the smallest rewriting each side
// produces (the paper's qualitative claim) alongside the running-time gap.

#include <benchmark/benchmark.h>

#include <string>

#include "baseline/minicon.h"
#include "cq/parser.h"
#include "rewrite/core_cover.h"

namespace vbr {
namespace {

ConjunctiveQuery Example42Query(int k) {
  std::string body;
  for (int i = 1; i <= k; ++i) {
    if (i > 1) body += ", ";
    body += "a" + std::to_string(i) + "(X,Z" + std::to_string(i) + "), ";
    body += "b" + std::to_string(i) + "(Z" + std::to_string(i) + ",Y)";
  }
  return MustParseQuery("q(X,Y) :- " + body);
}

ViewSet Example42Views(int k) {
  std::string text = "v(X,Y) :- ";
  for (int i = 1; i <= k; ++i) {
    if (i > 1) text += ", ";
    text += "a" + std::to_string(i) + "(X,Z" + std::to_string(i) + "), ";
    text += "b" + std::to_string(i) + "(Z" + std::to_string(i) + ",Y)";
  }
  text += "\n";
  for (int i = 1; i <= k - 1; ++i) {
    const std::string s = std::to_string(i);
    text += "v" + s + "(X,Y) :- a" + s + "(X,Z" + s + "), b" + s + "(Z" + s +
            ",Y)\n";
  }
  return MustParseProgram(text);
}

void BM_CoreCover_Example42(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const size_t num_threads = static_cast<size_t>(state.range(1));
  const ConjunctiveQuery q = Example42Query(k);
  const ViewSet views = Example42Views(k);
  CoreCoverOptions options;
  options.num_threads = num_threads;
  size_t best = 0;
  for (auto _ : state) {
    const auto result = CoreCover(q, views, options);
    benchmark::DoNotOptimize(result.rewritings.size());
    best = result.stats.minimum_cover_size;
  }
  state.counters["k"] = k;
  state.counters["threads"] = static_cast<double>(num_threads);
  state.counters["smallest_rewriting_subgoals"] = static_cast<double>(best);
}

void BM_MiniCon_Example42(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const ConjunctiveQuery q = Example42Query(k);
  const ViewSet views = Example42Views(k);
  size_t best = 0;
  size_t mcds = 0;
  for (auto _ : state) {
    const auto result = MiniCon(q, views);
    benchmark::DoNotOptimize(result.equivalent_rewritings.size());
    best = SIZE_MAX;
    for (const auto& p : result.equivalent_rewritings) {
      best = std::min(best, p.num_subgoals());
    }
    mcds = result.mcds.size();
  }
  state.counters["k"] = k;
  state.counters["smallest_rewriting_subgoals"] = static_cast<double>(best);
  state.counters["mcds"] = static_cast<double>(mcds);
}

// Args are {k, num_threads}: the k sweep runs serially, the threads sweep at
// the largest k measures the parallel pipeline against the same baseline.
BENCHMARK(BM_CoreCover_Example42)
    ->ArgsProduct({{2, 3, 4, 6, 8}, {1}})
    ->ArgsProduct({{8}, {2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MiniCon_Example42)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vbr

BENCHMARK_MAIN();
