// Cost of the resource-governance layer on the CoreCover* hot path: the
// same workload ungoverned (no ResourceGovernor installed — the seed
// behavior), governed with a budget it never hits (the steady-state cost of
// the cooperative checks), and governed with a deadline. The first two
// should be within noise of each other; that is the "cheap enough to leave
// on" claim in DESIGN.md "Resource governance".

#include <benchmark/benchmark.h>

#include <cstdint>

#include "common/budget.h"
#include "rewrite/core_cover.h"
#include "workload/generator.h"

namespace vbr {
namespace {

Workload BenchWorkload(uint64_t seed) {
  WorkloadConfig wc;
  wc.shape = QueryShape::kStar;
  wc.num_query_subgoals = 8;
  wc.num_predicates = 2;
  wc.num_views = 12;
  wc.seed = seed;
  return GenerateWorkload(wc);
}

void BM_CoreCoverUngoverned(benchmark::State& state) {
  const Workload w = BenchWorkload(static_cast<uint64_t>(state.range(0)));
  CoreCoverOptions options;
  options.num_threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CoreCoverStar(w.query, w.views, options));
  }
}
BENCHMARK(BM_CoreCoverUngoverned)->Arg(1)->Arg(5);

void BM_CoreCoverGovernedGenerousBudget(benchmark::State& state) {
  const Workload w = BenchWorkload(static_cast<uint64_t>(state.range(0)));
  CoreCoverOptions options;
  options.num_threads = 1;
  ResourceLimits limits;
  limits.work_limit = uint64_t{1} << 40;  // present, never trips
  for (auto _ : state) {
    ResourceGovernor governor(limits);
    GovernorScope scope(&governor);
    benchmark::DoNotOptimize(CoreCoverStar(w.query, w.views, options));
  }
}
BENCHMARK(BM_CoreCoverGovernedGenerousBudget)->Arg(1)->Arg(5);

void BM_CoreCoverGovernedDeadline(benchmark::State& state) {
  const Workload w = BenchWorkload(static_cast<uint64_t>(state.range(0)));
  CoreCoverOptions options;
  options.num_threads = 1;
  ResourceLimits limits;
  limits.deadline_ms = 60'000;  // present, never expires
  for (auto _ : state) {
    ResourceGovernor governor(limits);
    GovernorScope scope(&governor);
    benchmark::DoNotOptimize(CoreCoverStar(w.query, w.views, options));
  }
}
BENCHMARK(BM_CoreCoverGovernedDeadline)->Arg(1)->Arg(5);

}  // namespace
}  // namespace vbr

BENCHMARK_MAIN();
