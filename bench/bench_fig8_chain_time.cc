// Figure 8: time for CoreCover to generate all GMRs of 8-subgoal CHAIN
// queries (binary relations, subchain views of 1-3 subgoals) as the number
// of views grows to 1000, with all variables distinguished (a) and one
// nondistinguished (b). The paper reports < 2s per query at 1000 views with
// a flat trend; the shape — flatness in the number of views — is what this
// bench reproduces.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "rewrite/core_cover.h"

namespace vbr {
namespace {

void RunFigure8(benchmark::State& state, size_t nondistinguished) {
  const size_t num_views = static_cast<size_t>(state.range(0));
  const size_t num_threads = static_cast<size_t>(state.range(1));
  const auto& batch = bench_util::WorkloadBatch(QueryShape::kChain, num_views,
                                                nondistinguished);
  CoreCoverOptions options;
  options.num_threads = num_threads;
  size_t gmrs = 0;
  for (auto _ : state) {
    gmrs = 0;
    for (const Workload& w : batch) {
      const auto result = CoreCover(w.query, w.views, options);
      benchmark::DoNotOptimize(result.rewritings.size());
      gmrs += result.rewritings.size();
    }
  }
  state.counters["views"] = static_cast<double>(num_views);
  state.counters["threads"] = static_cast<double>(num_threads);
  state.counters["avg_gmrs"] =
      static_cast<double>(gmrs) / static_cast<double>(batch.size());
  state.counters["sec_per_query"] = benchmark::Counter(
      static_cast<double>(batch.size()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void BM_Fig8a_Chain_AllDistinguished(benchmark::State& state) {
  RunFigure8(state, 0);
}
void BM_Fig8b_Chain_OneNondistinguished(benchmark::State& state) {
  RunFigure8(state, 1);
}

// Args are {num_views, num_threads}; see bench_fig6_star_time.cc.
BENCHMARK(BM_Fig8a_Chain_AllDistinguished)
    ->ArgsProduct({{50, 100, 200, 400, 600, 800, 1000}, {1}})
    ->ArgsProduct({{1000}, {2, 4, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig8b_Chain_OneNondistinguished)
    ->ArgsProduct({{50, 100, 200, 400, 600, 800, 1000}, {1}})
    ->ArgsProduct({{1000}, {2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vbr

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Process-wide pipeline metrics accumulated across every run above.
  std::fprintf(stderr, "\n--- metrics snapshot ---\n%s",
               vbr::MetricsRegistry::Global().Snapshot().ToText().c_str());
  return 0;
}
