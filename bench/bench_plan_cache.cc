// Plan-cache benchmark: warm-vs-cold planning latency and PlanMany batch
// throughput over Section 7 chain/star workloads.
//
// "Cold" plans through a cache-disabled planner (every request pays the
// full CoreCover* run). "Warm" pre-populates the cache with one
// representative per query and then measures renamed/reordered variants,
// which hit the fingerprint cache and only pay canonicalization plus
// re-costing. The hit_rate counter comes straight from the planner's cache
// counters; warm speedup in EXPERIMENTS.md is cold time / warm time.
//
// Both cost models are reported because they bound the cache's win from
// opposite sides. Under M1 a hit skips everything that matters
// (minimization, CoreCover, certification) and re-costing is a subgoal
// count, so warm-over-cold speedup is an order of magnitude. Under M2 the
// planner re-costs every cached rewriting against the current instances by
// design (the executed-join subset DP dominates cold planning in these
// workloads), so the speedup is modest — that is the price of plans that
// keep tracking instance sizes.
//
// The configurations are deliberately smaller than the figure benches
// (4 workloads, star 8 subgoals / 50 views, chain 6 subgoals / 80 views,
// 20 rows per base relation, max_rewritings 16): a COLD M2 plan costs
// 10s-100s of milliseconds here, so an uncapped Section 7 point would make
// every iteration pay tens of seconds for information the figure benches
// already report.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "cq/rename.h"
#include "cq/substitution.h"
#include "engine/materialize.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

constexpr size_t kWorkloads = 4;
constexpr int kVariantRounds = 4;

// Renamed + subgoal-shuffled copy of `q` — the cache must recognize it.
ConjunctiveQuery Variant(const ConjunctiveQuery& q, std::mt19937& rng,
                         int round) {
  ConjunctiveQuery fresh =
      RenameVariablesApart(q, "w" + std::to_string(round));
  std::vector<Atom> body = fresh.body();
  std::shuffle(body.begin(), body.end(), rng);
  return ConjunctiveQuery(fresh.head(), std::move(body));
}

struct CacheWorkload {
  std::vector<Workload> base;
  std::vector<Database> view_dbs;
  // kVariantRounds renamed/shuffled copies of every base query.
  std::vector<std::vector<ConjunctiveQuery>> variants;
};

const CacheWorkload& SharedWorkload(QueryShape shape) {
  static auto* star = new CacheWorkload;
  static auto* chain = new CacheWorkload;
  CacheWorkload& w = (shape == QueryShape::kStar) ? *star : *chain;
  if (!w.base.empty()) return w;
  std::mt19937 rng(2026);
  for (size_t i = 0; i < kWorkloads; ++i) {
    WorkloadConfig wc;
    wc.shape = shape;
    wc.num_query_subgoals = (shape == QueryShape::kStar) ? 8 : 6;
    wc.num_views = (shape == QueryShape::kStar) ? 50 : 80;
    wc.seed = 1000 + i * 97;
    w.base.push_back(GenerateWorkload(wc));
    DataConfig dc;
    dc.rows_per_relation = 20;
    dc.domain_size = 12;
    dc.seed = 31 * i + 7;
    const Database base_db =
        GenerateBaseData(w.base[i].query, w.base[i].views, dc);
    w.view_dbs.push_back(MaterializeViews(w.base[i].views, base_db));
    std::vector<ConjunctiveQuery> vs;
    for (int round = 0; round < kVariantRounds; ++round) {
      vs.push_back(Variant(w.base[i].query, rng, round));
    }
    w.variants.push_back(std::move(vs));
  }
  return w;
}

ViewPlanner::Options BenchOptions(bool enable_cache) {
  ViewPlanner::Options options;
  options.enable_cache = enable_cache;
  options.core_cover.max_rewritings = 16;
  return options;
}

void RunPlanLatency(benchmark::State& state, QueryShape shape, bool warm) {
  const CostModel model =
      state.range(0) == 0 ? CostModel::kM1 : CostModel::kM2;
  const CacheWorkload& w = SharedWorkload(shape);
  std::vector<std::unique_ptr<ViewPlanner>> planners;
  size_t planned_per_iter = 0;
  for (size_t i = 0; i < w.base.size(); ++i) {
    planners.push_back(std::make_unique<ViewPlanner>(
        w.base[i].views, w.view_dbs[i], BenchOptions(warm)));
    if (warm) {
      // Pre-populate: the representative pays the one cold run.
      benchmark::DoNotOptimize(planners[i]->Plan(w.base[i].query, model));
    }
    planned_per_iter += w.variants[i].size();
  }
  for (auto _ : state) {
    for (size_t i = 0; i < w.base.size(); ++i) {
      for (const ConjunctiveQuery& q : w.variants[i]) {
        benchmark::DoNotOptimize(planners[i]->Plan(q, model));
      }
    }
  }
  uint64_t hits = 0, misses = 0;
  for (const auto& planner : planners) {
    hits += planner->cache_counters().hits;
    misses += planner->cache_counters().misses;
  }
  state.counters["hit_rate"] =
      (hits + misses) == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  state.counters["sec_per_query"] = benchmark::Counter(
      static_cast<double>(planned_per_iter),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void BM_PlanStar_Cold(benchmark::State& state) {
  RunPlanLatency(state, QueryShape::kStar, /*warm=*/false);
}
void BM_PlanStar_Warm(benchmark::State& state) {
  RunPlanLatency(state, QueryShape::kStar, /*warm=*/true);
}
void BM_PlanChain_Cold(benchmark::State& state) {
  RunPlanLatency(state, QueryShape::kChain, /*warm=*/false);
}
void BM_PlanChain_Warm(benchmark::State& state) {
  RunPlanLatency(state, QueryShape::kChain, /*warm=*/true);
}

// Arg 0 = cost model (0 -> M1, 1 -> M2).
BENCHMARK(BM_PlanStar_Cold)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlanStar_Warm)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlanChain_Cold)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlanChain_Warm)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Batched planning: one PlanMany call over every variant of one workload's
// query (heavy in-flight deduplication), at 1..8 worker threads. The first
// iteration pays the cold leader runs; later iterations are all hits, so
// this measures the batched steady state.
void BM_PlanManyBatch(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const CacheWorkload& w = SharedWorkload(QueryShape::kStar);
  ViewPlanner::Options options = BenchOptions(/*enable_cache=*/true);
  options.core_cover.num_threads = threads;
  std::vector<ConjunctiveQuery> batch;
  for (size_t i = 0; i < w.base.size(); ++i) {
    for (const ConjunctiveQuery& q : w.variants[i]) batch.push_back(q);
  }
  // All workloads draw predicates from one shared pool, so workload 0's
  // views serve the whole batch (queries they cannot rewrite still pay
  // fingerprinting and the CoreCover "no rewriting" analysis).
  ViewPlanner planner(w.base[0].views, w.view_dbs[0], options);
  for (auto _ : state) {
    const auto results = planner.PlanMany(batch, CostModel::kM2);
    benchmark::DoNotOptimize(results.size());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["batch"] = static_cast<double>(batch.size());
  state.counters["hit_rate"] = planner.cache_counters().HitRate();
  state.counters["sec_per_query"] = benchmark::Counter(
      static_cast<double>(batch.size()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

BENCHMARK(BM_PlanManyBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// After the benchmarks: one sample EXPLAIN of a warm-cache plan plus the
// process-wide metrics snapshot, so a bench run doubles as an observability
// smoke test (and EXPERIMENTS.md can quote real counter values).
void DumpObservability() {
  const CacheWorkload& w = SharedWorkload(QueryShape::kStar);
  ViewPlanner planner(w.base[0].views, w.view_dbs[0],
                      BenchOptions(/*enable_cache=*/true));
  benchmark::DoNotOptimize(planner.Plan(w.base[0].query, CostModel::kM2));
  const auto explanation =
      planner.Explain(w.variants[0][0], CostModel::kM2);
  std::fprintf(stderr, "\n--- sample EXPLAIN (warm cache) ---\n%s",
               explanation.ToText().c_str());
  std::fprintf(stderr, "\n--- metrics snapshot ---\n%s",
               MetricsRegistry::Global().Snapshot().ToText().c_str());
}

}  // namespace
}  // namespace vbr

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  vbr::DumpObservability();
  return 0;
}
