// vbr_cli — command-line front end for the rewriting generator.
//
// Reads a datalog program whose FIRST rule is the query and whose remaining
// rules are view definitions, then prints the globally-minimal rewritings
// (default) or the full M2 search space. With --data, additionally
// materializes the views over the given ground facts, picks a cost-based
// physical plan through the ViewPlanner facade, executes it, and prints the
// answer.
//
// Usage:
//   vbr_cli [--all-minimal] [--show-tuples] [--no-grouping] [--threads N]
//           [--no-cache] [--explain[=json]] [--trace]
//           [--deadline-ms MS] [--work-budget N] [--options JSON]
//           [--data FACTS_FILE [--model m1|m2|m3]]
//           [--replay QUERIES_FILE [--qps N] [--concurrency K]
//            [--connect HOST:PORT]] [file]
//
// --deadline-ms bounds the run by a wall-clock deadline and --work-budget by
// a deterministic work-unit budget (see DESIGN.md "Resource governance");
// both apply to the rewriting enumeration and to the planner. All request
// knobs (--model, --deadline-ms, --work-budget) land in one transport-
// neutral PlanRequestOptions (planner/request_options.h) — the same struct
// the binary wire protocol and the HTTP /plan endpoint consume — and
// --options JSON sets it wholesale in that shared dialect, e.g.
// --options '{"model":"m3","deadline_ms":50,"work_limit":100000}'. When a budget
// runs out the run winds down cooperatively: partial results are printed
// with a "budget exhausted" note instead of hanging or crashing.
//
// --replay switches to batch mode: QUERIES_FILE holds one query rule per
// line, each submitted to a PlanningService (planner/service.h) wrapping the
// program's views — --concurrency K worker threads, --qps N paced
// submission (0 = as fast as possible), --deadline-ms as the per-request
// deadline. The run ends by printing the per-status totals and the
// service's metrics snapshot (admission, shedding, retries, breaker state).
// The replay file may also be a BINARY request log captured with
// `vbr_server --request-log` (detected by the VBIN magic): each recorded
// request is then re-submitted with the options it was recorded with, so
// production traffic replays deterministically.  A rotated log set
// (file.2, file.1, file) replays in capture order when the base path is
// given and rotated siblings exist.
//
// --replay --connect HOST:PORT replays over the wire instead: each request
// goes to a running vbr_server through the resilient client
// (net/resilient_client.h) — connect/request timeouts, reconnects, and
// idempotent retries — so a replay survives a flaky network or a server
// restart mid-run.
//
// --explain prints the planner's account of its decision (candidates with
// costs and why they lost, the cache disposition, and a per-cost-model
// breakdown of the winner); --explain=json emits the same as one JSON
// object. --trace dumps the structured span tree of the planning call to
// stderr. Both plan against the --data instances when given, else against
// empty view instances (costs are then all zero, but the logical
// explanation is still meaningful).
//
// With no file, reads the program from standard input. Example program:
//
//   q1(S,C) :- car(M,a), loc(a,C), part(S,M,C).
//   v1(M,D,C) :- car(M,D), loc(D,C).
//   v2(S,M,C) :- part(S,M,C).
//   v4(M,D,C,S) :- car(M,D), loc(D,C), part(S,M,C).
//
// Example facts file:
//
//   car(toyota, a).  loc(a, sf).  part(store1, toyota, sf).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/timer.h"
#include "common/trace.h"
#include "cq/parser.h"
#include "engine/io.h"
#include "engine/materialize.h"
#include "net/resilient_client.h"
#include "planner/planner.h"
#include "planner/request_options.h"
#include "planner/service.h"
#include "planner/snapshot.h"
#include "rewrite/core_cover.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "vbr_cli: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vbr;

  bool all_minimal = false;
  bool show_tuples = false;
  bool enable_cache = true;
  enum class ExplainMode { kOff, kText, kJson };
  ExplainMode explain_mode = ExplainMode::kOff;
  bool trace = false;
  PlanRequestOptions request_options;
  CoreCoverOptions options;
  const char* path = nullptr;
  const char* data_path = nullptr;
  const char* replay_path = nullptr;
  const char* connect_spec = nullptr;
  double qps = 0;
  size_t concurrency = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--all-minimal") == 0) {
      all_minimal = true;
    } else if (std::strcmp(argv[i], "--show-tuples") == 0) {
      show_tuples = true;
    } else if (std::strcmp(argv[i], "--no-grouping") == 0) {
      options.group_views = false;
      options.group_view_tuples = false;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (++i >= argc) return Fail("--threads needs a count (0 = all cores)");
      char* end = nullptr;
      const unsigned long n = std::strtoul(argv[i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        return Fail(std::string("--threads needs a number, got ") + argv[i]);
      }
      options.num_threads = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      enable_cache = false;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      if (++i >= argc) return Fail("--deadline-ms needs a millisecond count");
      char* end = nullptr;
      request_options.deadline_ms = std::strtod(argv[i], &end);
      if (end == argv[i] || *end != '\0' || request_options.deadline_ms <= 0) {
        return Fail(std::string("--deadline-ms needs a positive number, got ") +
                    argv[i]);
      }
    } else if (std::strcmp(argv[i], "--work-budget") == 0) {
      if (++i >= argc) return Fail("--work-budget needs a work-unit count");
      char* end = nullptr;
      request_options.work_limit = std::strtoull(argv[i], &end, 10);
      if (end == argv[i] || *end != '\0' || request_options.work_limit == 0) {
        return Fail(std::string("--work-budget needs a positive count, got ") +
                    argv[i]);
      }
    } else if (std::strcmp(argv[i], "--options") == 0) {
      if (++i >= argc) return Fail("--options needs a JSON object");
      std::string options_error;
      const auto parsed =
          PlanRequestOptions::FromJsonText(argv[i], &options_error);
      if (!parsed.has_value()) {
        return Fail("--options: " + options_error);
      }
      request_options = *parsed;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain_mode = ExplainMode::kText;
    } else if (std::strcmp(argv[i], "--explain=json") == 0) {
      explain_mode = ExplainMode::kJson;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--data") == 0) {
      if (++i >= argc) return Fail("--data needs a file argument");
      data_path = argv[i];
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      if (++i >= argc) return Fail("--replay needs a queries file");
      replay_path = argv[i];
    } else if (std::strcmp(argv[i], "--connect") == 0) {
      if (++i >= argc) return Fail("--connect needs HOST:PORT");
      connect_spec = argv[i];
    } else if (std::strcmp(argv[i], "--qps") == 0) {
      if (++i >= argc) return Fail("--qps needs a rate (0 = unpaced)");
      char* end = nullptr;
      qps = std::strtod(argv[i], &end);
      if (end == argv[i] || *end != '\0' || qps < 0) {
        return Fail(std::string("--qps needs a non-negative rate, got ") +
                    argv[i]);
      }
    } else if (std::strcmp(argv[i], "--concurrency") == 0) {
      if (++i >= argc) return Fail("--concurrency needs a worker count");
      char* end = nullptr;
      const unsigned long k = std::strtoul(argv[i], &end, 10);
      if (end == argv[i] || *end != '\0' || k == 0) {
        return Fail(
            std::string("--concurrency needs a positive count, got ") +
            argv[i]);
      }
      concurrency = static_cast<size_t>(k);
    } else if (std::strcmp(argv[i], "--model") == 0) {
      if (++i >= argc) return Fail("--model needs m1, m2, or m3");
      if (!CostModelFromName(argv[i], &request_options.model)) {
        return Fail("--model needs m1, m2, or m3");
      }
    } else if (argv[i][0] == '-') {
      return Fail(std::string("unknown flag ") + argv[i]);
    } else {
      path = argv[i];
    }
  }

  // Everything below consumes the one unified request-options struct.
  const ResourceLimits budget = request_options.limits();
  const CostModel model = request_options.model;

  std::string text;
  if (path != nullptr) {
    std::ifstream in(path);
    if (!in) return Fail(std::string("cannot open ") + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  }

  std::string error;
  auto program = ParseProgram(text, &error);
  if (!program.has_value()) return Fail("parse error: " + error);
  if (program->size() < 2) {
    return Fail("need a query rule followed by at least one view rule");
  }
  const ConjunctiveQuery query = (*program)[0];
  const ViewSet views(program->begin() + 1, program->end());
  if (!query.IsSafe()) return Fail("query is unsafe");
  for (const View& v : views) {
    if (!v.IsSafe()) return Fail("unsafe view: " + v.ToString());
  }

  // --replay: batch mode. Every query in the replay file is submitted to a
  // PlanningService over this program's views; the one-shot enumeration and
  // printing below are skipped entirely.
  if (replay_path != nullptr) {
    std::ifstream replay_in(replay_path, std::ios::binary);
    if (!replay_in) return Fail(std::string("cannot open ") + replay_path);
    std::stringstream replay_buffer;
    replay_buffer << replay_in.rdbuf();
    const std::string replay_bytes = replay_buffer.str();

    // The replay stream: either a text file of query rules (each submitted
    // with the CLI's options) or a binary request log captured by
    // `vbr_server --request-log` (each record re-submitted with the
    // OPTIONS IT WAS RECORDED WITH, for a deterministic re-run). Binary
    // logs are length-prefixed VBIN frames, so the magic sits at offset 4.
    std::vector<ConjunctiveQuery> replay_list;
    std::vector<PlanRequestOptions> replay_options;
    bool is_binary_log =
        replay_bytes.size() >= 8 && replay_bytes.compare(4, 4, "VBIN") == 0;
    if (!is_binary_log && replay_bytes.empty()) {
      // A crash right after rotation leaves an empty live file; the
      // newest rotated sibling carries the magic instead.
      std::ifstream sibling_in(std::string(replay_path) + ".1",
                               std::ios::binary);
      if (sibling_in) {
        char head[8] = {0};
        sibling_in.read(head, sizeof(head));
        is_binary_log = sibling_in.gcount() == 8 &&
                        std::memcmp(head + 4, "VBIN", 4) == 0;
      }
    }
    if (is_binary_log) {
      // Read the whole rotated set (path.K .. path.1, then the live file)
      // so a rotated capture replays in order from just the base path.
      std::vector<RequestLogRecord> records;
      size_t truncated = 0;
      const vbin::Status status =
          ReadRequestLogSet(replay_path, &records, &truncated);
      if (!status.ok()) return Fail("replay log: " + status.error);
      if (truncated > 0) {
        std::fprintf(stderr,
                     "vbr_cli: replay log has a torn tail (%zu byte(s) "
                     "dropped)\n",
                     truncated);
      }
      if (records.empty()) return Fail("replay log has no records");
      for (RequestLogRecord& record : records) {
        replay_list.push_back(std::move(record.query));
        replay_options.push_back(record.options);
      }
    } else {
      std::string replay_error;
      const auto parsed = ParseProgram(replay_bytes, &replay_error);
      if (!parsed.has_value()) {
        return Fail("replay parse error: " + replay_error);
      }
      if (parsed->empty()) return Fail("replay file has no queries");
      replay_list = *parsed;
      replay_options.assign(replay_list.size(), request_options);
    }
    for (const ConjunctiveQuery& q : replay_list) {
      if (!q.IsSafe()) return Fail("unsafe replay query: " + q.ToString());
    }

    // --connect: replay over the wire through the resilient client instead
    // of an in-process service.  Workers stripe the request ids; --qps
    // paces on the ABSOLUTE schedule (request i due at start + i/qps).  A
    // request whose retry budget runs out counts as lost and fails the
    // run; rejected/shed responses are the server's business and do not.
    if (connect_spec != nullptr) {
      const char* colon = std::strrchr(connect_spec, ':');
      if (colon == nullptr || colon == connect_spec || colon[1] == '\0') {
        return Fail("--connect needs HOST:PORT");
      }
      const std::string host(connect_spec, colon - connect_spec);
      const int port = std::atoi(colon + 1);
      if (port <= 0 || port > 65535) {
        return Fail(std::string("--connect: bad port in ") + connect_spec);
      }

      const double inter_arrival_ms = qps > 0 ? 1000.0 / qps : 0;
      const size_t workers =
          std::max<size_t>(1, std::min(concurrency, replay_list.size()));
      std::atomic<size_t> by_status[7] = {};
      std::atomic<size_t> lost{0}, retries{0}, reconnects{0}, timeouts{0};
      const auto start = std::chrono::steady_clock::now();
      const Timer wall;
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
          net::ResilientClientOptions copts;
          copts.host = host;
          copts.port = static_cast<uint16_t>(port);
          copts.backoff_seed = 0x9e3779b97f4a7c15ULL * (w + 1);
          net::ResilientClient client(copts);
          for (size_t id = w; id < replay_list.size(); id += workers) {
            if (inter_arrival_ms > 0) {
              std::this_thread::sleep_until(
                  start +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          inter_arrival_ms * static_cast<double>(id))));
            }
            net::PlanRequestFrame request;
            request.request_id = static_cast<uint64_t>(id) + 1;
            request.options = replay_options[id];
            request.query_text = replay_list[id].ToString();
            net::PlanResponseFrame response;
            std::string call_error;
            if (!client.Call(request, &response, &call_error)) {
              lost.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            const size_t s = static_cast<size_t>(response.status);
            if (s < 7) by_status[s].fetch_add(1, std::memory_order_relaxed);
          }
          const net::ResilientClient::Stats cs = client.stats();
          retries.fetch_add(cs.retries, std::memory_order_relaxed);
          reconnects.fetch_add(cs.reconnects, std::memory_order_relaxed);
          timeouts.fetch_add(cs.timeouts, std::memory_order_relaxed);
        });
      }
      for (std::thread& t : threads) t.join();
      const double elapsed_ms = wall.ElapsedMillis();
      const size_t total = replay_list.size();
      std::printf(
          "%% replayed %zu request(s) over the wire to %s in %.2f ms "
          "(%.1f qps achieved, %zu worker(s))\n",
          total, connect_spec, elapsed_ms,
          elapsed_ms > 0
              ? 1000.0 * static_cast<double>(total - lost.load()) / elapsed_ms
              : 0.0,
          workers);
      std::printf("%% ok %zu  rejected %zu  shed %zu  failed %zu  "
                  "bad_request %zu  unknown_handle %zu  lost %zu\n",
                  by_status[0].load(), by_status[1].load(),
                  by_status[2].load(), by_status[3].load(),
                  by_status[4].load() + by_status[5].load(),
                  by_status[6].load(), lost.load());
      std::printf("%% transport: retries %zu  reconnects %zu  timeouts %zu\n",
                  retries.load(), reconnects.load(), timeouts.load());
      const size_t hard_failures = by_status[3].load() + by_status[4].load() +
                                   by_status[5].load() + by_status[6].load();
      return (lost.load() != 0 || hard_failures != 0) ? 2 : 0;
    }

    Database base;
    if (data_path != nullptr) {
      std::string data_error;
      auto loaded = LoadDatabaseFile(data_path, &data_error);
      if (!loaded.has_value()) return Fail(data_error);
      base = std::move(*loaded);
    }
    ViewPlanner::Options planner_options;
    planner_options.core_cover = options;
    planner_options.enable_cache = enable_cache;
    ViewPlanner planner(views, MaterializeViews(views, base), planner_options);

    PlanningService::Options service_options;
    service_options.num_workers = concurrency;
    PlanningService service(&planner, service_options);

    const double inter_arrival_ms = qps > 0 ? 1000.0 / qps : 0;
    const Timer wall;
    std::vector<std::future<PlanningService::PlanResponse>> futures;
    futures.reserve(replay_list.size());
    for (size_t i = 0; i < replay_list.size(); ++i) {
      PlanningService::PlanRequest request;
      request.query = replay_list[i];
      // The unified options carry the model, the per-request deadline, and
      // the work/memory budget in one struct; the service derives its
      // admission check and attempt governor from them. A binary-log
      // replay uses each record's RECORDED options instead of the CLI's.
      request.options = replay_options[i];
      futures.push_back(service.Submit(std::move(request)));
      if (inter_arrival_ms > 0 && i + 1 < replay_list.size()) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(inter_arrival_ms));
      }
    }
    size_t ok = 0, rejected = 0, shed = 0, failed = 0, cache_hits = 0;
    for (auto& f : futures) {
      const auto response = f.get();
      switch (response.status) {
        case PlanningService::ServiceStatus::kOk:
          ++ok;
          if (response.result.cache_hit) ++cache_hits;
          break;
        case PlanningService::ServiceStatus::kRejected:
          ++rejected;
          break;
        case PlanningService::ServiceStatus::kShed:
          ++shed;
          break;
        case PlanningService::ServiceStatus::kFailed:
          ++failed;
          break;
      }
    }
    service.Shutdown();
    const double elapsed_ms = wall.ElapsedMillis();
    std::printf("%% replayed %zu request(s) in %.2f ms (%.1f qps achieved, "
                "concurrency %zu)\n",
                futures.size(), elapsed_ms,
                elapsed_ms > 0 ? 1000.0 * static_cast<double>(futures.size()) /
                                     elapsed_ms
                               : 0.0,
                concurrency);
    std::printf("%% ok %zu (cache hits %zu)  rejected %zu  shed %zu  "
                "failed %zu\n",
                ok, cache_hits, rejected, shed, failed);
    std::printf("%s", service.stats().ToString().c_str());
    return failed == 0 ? 0 : 2;
  }

  // The standalone enumeration runs under its own governor so a --deadline-ms
  // or --work-budget bounds it exactly like the planner calls below.
  const CoreCoverResult result = [&] {
    std::optional<ResourceGovernor> governor;
    if (!budget.unlimited()) governor.emplace(budget);
    GovernorScope scope(governor ? &*governor : nullptr);
    return all_minimal ? CoreCoverStar(query, views, options)
                       : CoreCover(query, views, options);
  }();
  const bool budget_died = result.status == CoreCoverStatus::kBudgetExhausted;
  // With --explain the planner below reports the failure (status, error)
  // in the requested format instead of a bare exit.
  if (!result.ok() && !budget_died && explain_mode == ExplainMode::kOff) {
    return Fail("unsupported query: " + result.error);
  }
  if (budget_died && explain_mode != ExplainMode::kJson) {
    std::printf("%% budget exhausted (%s at %s); results are partial\n",
                BudgetKindName(result.exhaustion.kind),
                result.exhaustion.site.c_str());
  }

  if (show_tuples && explain_mode != ExplainMode::kJson) {
    std::printf("%% view tuples (T(Q,V)) and their cores:\n");
    for (const auto& t : result.view_tuples) {
      std::printf("%%   %-20s core size %zu%s\n",
                  t.tuple.atom.ToString().c_str(), t.core.size(),
                  t.core.empty() ? " (filter candidate)" : "");
    }
  }

  // --explain=json keeps stdout machine-readable: one JSON object, no
  // human preamble.
  if ((result.ok() || budget_died) && explain_mode != ExplainMode::kJson) {
    if (!result.has_rewriting) {
      std::printf(budget_died
                      ? "%% no equivalent rewriting found within budget\n"
                      : "%% no equivalent rewriting exists\n");
      // With --explain the planner still runs below so the failure is
      // explained (status, cache disposition) instead of just exiting.
      if (explain_mode == ExplainMode::kOff) return 2;
    } else {
      std::printf("%% %zu %s rewriting(s); minimum subgoals = %zu; %.2f ms\n",
                  result.rewritings.size(),
                  all_minimal ? "minimal" : "globally-minimal",
                  result.stats.minimum_cover_size, result.stats.total_ms);
      for (const auto& p : result.rewritings) {
        std::printf("%s.\n", p.ToString().c_str());
      }
    }
  }

  // Optional execution / explanation against concrete data (empty view
  // instances when --data was not given).
  if (data_path != nullptr || explain_mode != ExplainMode::kOff || trace) {
    Database base;
    if (data_path != nullptr) {
      std::string data_error;
      auto loaded = LoadDatabaseFile(data_path, &data_error);
      if (!loaded.has_value()) return Fail(data_error);
      base = std::move(*loaded);
    }
    ViewPlanner::Options planner_options;
    planner_options.core_cover = options;
    planner_options.enable_cache = enable_cache;
    planner_options.budget = budget;
    ViewPlanner planner(views, MaterializeViews(views, base),
                        planner_options);
    MemoryTraceSink sink;
    TraceSink* const sink_ptr = trace ? &sink : nullptr;
    if (explain_mode != ExplainMode::kOff) {
      const auto explanation = planner.Explain(query, model, sink_ptr);
      if (explain_mode == ExplainMode::kJson) {
        std::printf("%s\n", explanation.ToJson().c_str());
      } else {
        std::printf("%%\n%% explain:\n%s", explanation.ToText().c_str());
      }
      if (trace) {
        std::fprintf(stderr, "%s", sink.ToText().c_str());
      }
      if (!explanation.ok()) return 2;
      return 0;
    }
    const auto plan = planner.Plan(query, model, sink_ptr);
    if (trace) {
      std::fprintf(stderr, "%s", sink.ToText().c_str());
    }
    if (!plan.ok()) {
      return Fail(std::string("planner: ") + PlanStatusName(plan.status) +
                  (plan.error.empty() ? "" : " (" + plan.error + ")"));
    }
    if (plan.exhaustion.kind != BudgetKind::kNone) {
      std::printf("%%\n%% budget: %s budget exhausted at %s%s\n",
                  BudgetKindName(plan.exhaustion.kind),
                  plan.exhaustion.site.c_str(),
                  plan.degraded ? " (degraded plan)" : "");
    }
    std::printf("%%\n%% chosen physical plan (cost %zu):\n%%   %s\n",
                plan.choice->cost, plan.choice->physical.ToString().c_str());
    const Relation answer = planner.Execute(*plan.choice);
    std::printf("%% answer (%zu row(s)):\n", answer.size());
    for (const auto& row : answer.SortedRows()) {
      std::string line = query.head().predicate_name() + "(";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) line += ", ";
        line += ValueToString(row[i]);
      }
      std::printf("%s).\n", line.c_str());
    }
  }
  return 0;
}
