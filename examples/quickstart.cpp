// Quickstart: the paper's car-loc-part example end to end.
//
// Parses the query and views, computes view tuples and tuple-cores, runs
// CoreCover for the globally-minimal rewritings (cost model M1) and
// CoreCover* for the M2 search space, then materializes the views over a
// small concrete database and shows that the rewriting computes exactly the
// query's answer without touching the base relations.

#include <cstdio>

#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"
#include "rewrite/core_cover.h"

namespace {

void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace

int main() {
  using namespace vbr;

  // The query: stores and cities selling parts for car makes sold by the
  // anderson branch in that city ("anderson" abbreviated as "a").
  const ConjunctiveQuery query =
      MustParseQuery("q1(S,C) :- car(M,a), loc(a,C), part(S,M,C)");
  const ViewSet views = MustParseProgram(R"(
    v1(M,D,C) :- car(M,D), loc(D,C)
    v2(S,M,C) :- part(S,M,C)
    v3(S) :- car(M,a), loc(a,C), part(S,M,C)
    v4(M,D,C,S) :- car(M,D), loc(D,C), part(S,M,C)
    v5(M,D,C) :- car(M,D), loc(D,C)
  )");

  PrintHeader("Query and views");
  std::printf("Q:  %s\n", query.ToString().c_str());
  for (const View& v : views) std::printf("    %s\n", v.ToString().c_str());

  // CoreCover: view tuples, tuple-cores, minimum covers.
  const CoreCoverResult result = CoreCover(query, views);

  PrintHeader("View tuples and tuple-cores");
  for (const AnnotatedViewTuple& t : result.view_tuples) {
    std::printf("  %-14s covers {", t.tuple.atom.ToString().c_str());
    for (size_t i = 0; i < t.core.covered.size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  result.minimized_query.subgoal(t.core.covered[i])
                      .ToString()
                      .c_str());
    }
    std::printf("}%s\n", t.core.empty() ? "  (filter candidate)" : "");
  }

  PrintHeader("Globally-minimal rewritings (cost model M1)");
  for (const ConjunctiveQuery& p : result.rewritings) {
    std::printf("  %s\n", p.ToString().c_str());
  }

  PrintHeader("All minimal rewritings over view tuples (M2 search space)");
  for (const ConjunctiveQuery& p : CoreCoverStar(query, views).rewritings) {
    std::printf("  %s\n", p.ToString().c_str());
  }

  // Concrete data: materialize the views, evaluate the rewriting over the
  // views only, and compare with the query over the base tables.
  PrintHeader("Closed-world check on concrete data");
  Database base;
  const Value a = EncodeConstant(Const("a"));
  const Value toyota = EncodeConstant(Const("toyota"));
  const Value honda = EncodeConstant(Const("honda"));
  const Value sf = EncodeConstant(Const("sf"));
  const Value la = EncodeConstant(Const("la"));
  base.AddRow("car", {toyota, a});
  base.AddRow("car", {honda, a});
  base.AddRow("loc", {a, sf});
  base.AddRow("loc", {a, la});
  base.AddRow("part", {EncodeConstant(Const("store1")), toyota, sf});
  base.AddRow("part", {EncodeConstant(Const("store2")), honda, la});

  const Database view_db = MaterializeViews(views, base);
  const Relation direct = EvaluateQuery(query, base);
  const Relation via_views = EvaluateQuery(result.rewritings.front(), view_db);
  std::printf("  Q over base tables : %s\n", direct.ToString().c_str());
  std::printf("  GMR over views     : %s\n", via_views.ToString().c_str());
  std::printf("  answers identical  : %s\n",
              direct.EqualsAsSet(via_views) ? "yes" : "NO (bug!)");
  return direct.EqualsAsSet(via_views) ? 0 : 1;
}
