// Data-integration scenario: a mediator answers a query over a logical
// schema using only materialized source extracts (the views). CoreCover
// generates candidate logical plans, the M2 optimizer orders their joins
// against real extract sizes, and the filter advisor decides whether a
// redundant-but-selective extract is worth adding — the paper's motivating
// application (Section 1).
//
// Schema (a travel marketplace):
//   flight(Airline, From, To)       hotel(City, Hotel, Stars)
//   deal(Airline, Hotel)            rating(Airline, Score)

#include <cstdio>

#include "common/rng.h"
#include "cost/filter_advisor.h"
#include "cost/m2_optimizer.h"
#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"
#include "rewrite/core_cover.h"

int main() {
  using namespace vbr;

  // "Packages from sfo: airline flying sfo->C with a partner hotel there."
  const ConjunctiveQuery query = MustParseQuery(
      "package(A,C,H) :- flight(A,sfo,C), hotel(C,H,S), deal(A,H)");

  // Source extracts the mediator has materialized.
  const ViewSet views = MustParseProgram(R"(
    src_routes(A,F,T) :- flight(A,F,T)
    src_hotels(C,H,S) :- hotel(C,H,S)
    src_deals(A,H) :- deal(A,H)
    src_sfo_packages(A,C,H) :- flight(A,sfo,C), hotel(C,H,S), deal(A,H)
    src_sfo_dealt_airlines(A) :- flight(A,sfo,C), hotel(C,H,S), deal(A,H)
  )");

  std::printf("Query: %s\n", query.ToString().c_str());

  const CoreCoverResult cc = CoreCover(query, views);
  std::printf("\nGlobally-minimal rewritings:\n");
  for (const auto& p : cc.rewritings) {
    std::printf("  %s\n", p.ToString().c_str());
  }
  const CoreCoverResult star = CoreCoverStar(query, views);
  std::printf("\nAll minimal rewritings (M2 search space):\n");
  for (const auto& p : star.rewritings) {
    std::printf("  %s\n", p.ToString().c_str());
  }

  // Synthesize source data: many routes/hotels/deals, few sfo packages.
  Database base;
  Rng rng(2024);
  const Value sfo = EncodeConstant(Const("sfo"));
  for (Value a = 0; a < 40; ++a) {
    for (int k = 0; k < 8; ++k) {
      const Value from = (k == 0 && a % 10 == 0) ? sfo : rng.UniformInt(1, 30);
      base.AddRow("flight", {a, from, rng.UniformInt(1, 30)});
    }
    base.AddRow("rating", {a, rng.UniformInt(1, 5)});
  }
  for (Value c = 1; c <= 30; ++c) {
    for (Value h = 0; h < 12; ++h) {
      base.AddRow("hotel", {c, c * 100 + h, rng.UniformInt(1, 5)});
    }
  }
  for (Value a = 0; a < 40; ++a) {
    for (int k = 0; k < 3; ++k) {
      const Value c = rng.UniformInt(1, 30);
      base.AddRow("deal", {a, c * 100 + rng.UniformInt(0, 11)});
    }
  }

  const Database view_db = MaterializeViews(views, base);
  std::printf("\nSource extract sizes:\n");
  for (Symbol p : view_db.Predicates()) {
    std::printf("  %-24s %5zu rows\n",
                SymbolTable::Global().NameOf(p).c_str(),
                view_db.Find(p)->size());
  }

  // Optimize each candidate under M2 and report.
  std::printf("\nM2-optimized physical plans:\n");
  const ConjunctiveQuery* best = nullptr;
  size_t best_cost = SIZE_MAX;
  for (const auto& p : star.rewritings) {
    const auto m2 = OptimizeOrderM2(p, view_db);
    std::printf("  cost %6zu  %s\n", m2.cost, m2.plan.ToString().c_str());
    if (m2.cost < best_cost) {
      best_cost = m2.cost;
      best = &p;
    }
  }

  // Ask the advisor whether any empty-core extract helps the three-way
  // join plan.
  std::printf("\nFilter advice:\n");
  std::vector<Atom> filters;
  for (size_t i : star.filter_candidates) {
    filters.push_back(star.view_tuples[i].tuple.atom);
  }
  for (const auto& p : star.rewritings) {
    if (p.num_subgoals() < 2) continue;
    const auto advice = AdviseFilters(p, filters, view_db);
    std::printf("  %s\n    base %zu -> improved %zu (%zu filters)\n",
                p.ToString().c_str(), advice.base_cost, advice.improved_cost,
                advice.filters_added.size());
  }

  // Correctness: the cheapest plan answers the query exactly.
  const Relation expected = EvaluateQuery(query, base);
  const Relation got = EvaluateQuery(*best, view_db);
  std::printf("\npackages found: %zu; plan answer matches query: %s\n",
              expected.size(), got.EqualsAsSet(expected) ? "yes" : "NO");
  return got.EqualsAsSet(expected) ? 0 : 1;
}
