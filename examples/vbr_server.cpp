// vbr_server — serves plans over the wire.
//
// Reads a datalog program whose rules are ALL view definitions (unlike
// vbr_cli there is no query rule: queries arrive over the network),
// optionally materializes them over --data ground facts, and starts a
// PlanServer (server/plan_server.h): the compact binary protocol on --port
// and the HTTP/1.1 JSON debug endpoint on --http-port.  Planning runs
// through a PlanningService, so admission control, deadlines, retries, and
// the brown-out ladder all apply to network requests exactly as they do to
// in-process callers.
//
// Usage:
//   vbr_server [--port P] [--http-port P] [--host H]
//              [--workers N] [--queue N] [--data FACTS_FILE]
//              [--max-connections N] [--reject-over-capacity]
//              [--idle-timeout-ms MS] [--progress-timeout-ms MS]
//              [--write-stall-timeout-ms MS] [--drain-grace-ms MS]
//              [--snapshot-path FILE] [--snapshot-interval-s S]
//              [--request-log FILE] [--request-log-max-mb MB]
//              [--request-log-keep K] [VIEWS_FILE]
//
// Port 0 (the default) binds an ephemeral port; both bound ports are
// printed on startup, one per line, as "binary_port=P" / "http_port=P", so
// scripts can scrape them.  The server runs until SIGINT/SIGTERM; on
// signal it first DRAINS — stops accepting, lets in-flight requests
// finish and their responses flush, up to --drain-grace-ms (default 2000,
// 0 = stop immediately) — then force-closes whatever remains.
//
// Connection hygiene (see server/plan_server.h): --idle-timeout-ms evicts
// connections with nothing going on, --progress-timeout-ms evicts clients
// that dribble a request byte-by-byte without ever completing one
// (slowloris), --write-stall-timeout-ms evicts peers that stopped reading
// their responses.  All default to 0 (off).  At --max-connections the
// server pauses accepting (kernel-backlog backpressure) unless
// --reject-over-capacity, which accepts-and-closes instead.
//
// Persistence (planner/snapshot.h):
//   --snapshot-path FILE   warm-start the plan cache from FILE at startup
//                          (a mismatched or missing snapshot is a clean
//                          cold start), save it back every
//                          --snapshot-interval-s seconds (default 30, 0 =
//                          only at shutdown), and save on drain — so a
//                          restarted server serves cache hits from the
//                          very first request;
//   --request-log FILE     append every submitted request (query + options)
//                          to FILE as length-prefixed VBIN records; replay
//                          the stream later with `vbr_cli --replay FILE`.
//   --request-log-max-mb M rotate the log when it would pass M MiB
//                          (FILE -> FILE.1 -> FILE.2 ..., atomic renames
//                          at record boundaries; 0 = never, the default);
//   --request-log-keep K   keep at most K rotated files (default 3);
//                          `vbr_cli --replay FILE` reads the whole set.
//
// Try it:
//   vbr_server --http-port 8080 views.dl &
//   curl -s localhost:8080/plan -d '{"query":"q(S):-part(S,M,C).",
//        "options":{"model":"m2","deadline_ms":100}}'
//   curl -s 'localhost:8080/explain?q=q(S)%20:-%20part(S,M,C).&model=m2'
//   curl -s localhost:8080/statz
//   curl -s localhost:8080/metricz?format=text

#include <csignal>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <semaphore>
#include <sstream>
#include <string>
#include <thread>

#include "cq/parser.h"
#include "engine/io.h"
#include "engine/materialize.h"
#include "planner/planner.h"
#include "planner/service.h"
#include "planner/snapshot.h"
#include "server/plan_server.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "vbr_server: %s\n", message.c_str());
  return 1;
}

// Signal handlers can only poke something async-signal-safe; a binary
// semaphore release is (counting_semaphore::release is signal-safe enough
// for this use on the supported platforms, and the handler runs once).
std::binary_semaphore g_shutdown{0};

void HandleSignal(int) { g_shutdown.release(); }

}  // namespace

int main(int argc, char** argv) {
  using namespace vbr;

  server::PlanServerOptions server_options;
  PlanningService::Options service_options;
  const char* path = nullptr;
  const char* data_path = nullptr;
  const char* snapshot_path = nullptr;
  const char* request_log_path = nullptr;
  RequestLogOptions request_log_options;
  double snapshot_interval_s = 30;
  int drain_grace_ms = 2000;
  for (int i = 1; i < argc; ++i) {
    auto NeedsValue = [&](const char* flag) -> const char* {
      if (++i >= argc) {
        std::fprintf(stderr, "vbr_server: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      server_options.binary_port =
          static_cast<uint16_t>(std::atoi(NeedsValue("--port")));
    } else if (std::strcmp(argv[i], "--http-port") == 0) {
      server_options.http_port =
          static_cast<uint16_t>(std::atoi(NeedsValue("--http-port")));
    } else if (std::strcmp(argv[i], "--host") == 0) {
      server_options.host = NeedsValue("--host");
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      service_options.num_workers =
          static_cast<size_t>(std::atoi(NeedsValue("--workers")));
      if (service_options.num_workers == 0) {
        return Fail("--workers needs a positive count");
      }
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      service_options.max_queue =
          static_cast<size_t>(std::atoi(NeedsValue("--queue")));
      if (service_options.max_queue == 0) {
        return Fail("--queue needs a positive capacity");
      }
    } else if (std::strcmp(argv[i], "--data") == 0) {
      data_path = NeedsValue("--data");
    } else if (std::strcmp(argv[i], "--snapshot-path") == 0) {
      snapshot_path = NeedsValue("--snapshot-path");
    } else if (std::strcmp(argv[i], "--snapshot-interval-s") == 0) {
      snapshot_interval_s = std::atof(NeedsValue("--snapshot-interval-s"));
    } else if (std::strcmp(argv[i], "--request-log") == 0) {
      request_log_path = NeedsValue("--request-log");
    } else if (std::strcmp(argv[i], "--request-log-max-mb") == 0) {
      request_log_options.max_bytes =
          static_cast<size_t>(std::atof(NeedsValue("--request-log-max-mb")) *
                              1024.0 * 1024.0);
    } else if (std::strcmp(argv[i], "--request-log-keep") == 0) {
      request_log_options.keep =
          static_cast<size_t>(std::atoi(NeedsValue("--request-log-keep")));
    } else if (std::strcmp(argv[i], "--max-connections") == 0) {
      server_options.max_connections =
          static_cast<size_t>(std::atoi(NeedsValue("--max-connections")));
      if (server_options.max_connections == 0) {
        return Fail("--max-connections needs a positive count");
      }
    } else if (std::strcmp(argv[i], "--reject-over-capacity") == 0) {
      server_options.reject_over_capacity = true;
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      server_options.idle_timeout_ms = std::atoi(NeedsValue("--idle-timeout-ms"));
    } else if (std::strcmp(argv[i], "--progress-timeout-ms") == 0) {
      server_options.progress_timeout_ms =
          std::atoi(NeedsValue("--progress-timeout-ms"));
    } else if (std::strcmp(argv[i], "--write-stall-timeout-ms") == 0) {
      server_options.write_stall_timeout_ms =
          std::atoi(NeedsValue("--write-stall-timeout-ms"));
    } else if (std::strcmp(argv[i], "--drain-grace-ms") == 0) {
      drain_grace_ms = std::atoi(NeedsValue("--drain-grace-ms"));
    } else if (argv[i][0] == '-') {
      return Fail(std::string("unknown flag ") + argv[i]);
    } else {
      path = argv[i];
    }
  }

  std::string text;
  if (path != nullptr) {
    std::ifstream in(path);
    if (!in) return Fail(std::string("cannot open ") + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  }

  std::string error;
  auto program = ParseProgram(text, &error);
  if (!program.has_value()) return Fail("parse error: " + error);
  if (program->empty()) return Fail("need at least one view rule");
  const ViewSet views(program->begin(), program->end());
  for (const View& v : views) {
    if (!v.IsSafe()) return Fail("unsafe view: " + v.ToString());
  }

  Database base;
  if (data_path != nullptr) {
    std::string data_error;
    auto loaded = LoadDatabaseFile(data_path, &data_error);
    if (!loaded.has_value()) return Fail(data_error);
    base = std::move(*loaded);
  }

  ViewPlanner planner(views, MaterializeViews(views, base));

  // Warm-start: load the previous run's plan cache. A missing file or a
  // snapshot of a different view set is a clean cold start; only a corrupt
  // file is worth a warning (and still not fatal — we serve cold).
  if (snapshot_path != nullptr) {
    const SnapshotLoadResult load = planner.LoadSnapshot(snapshot_path);
    if (!load.ok()) {
      std::fprintf(stderr, "vbr_server: snapshot not loaded (%s); cold start\n",
                   load.status.error.c_str());
    } else if (!load.compatible) {
      std::fprintf(stderr,
                   "vbr_server: snapshot is for a different view set; "
                   "cold start\n");
    } else {
      std::fprintf(stderr, "vbr_server: warm start, %zu cached plan(s)\n",
                   load.entries_loaded);
    }
  }

  std::shared_ptr<RequestLogWriter> request_log;
  if (request_log_path != nullptr) {
    request_log = std::make_shared<RequestLogWriter>();
    const vbin::Status status =
        request_log->Open(request_log_path, request_log_options);
    if (!status.ok()) return Fail("request log: " + status.error);
    service_options.request_log = request_log;
  }

  PlanningService service(&planner, service_options);
  server::PlanServer server(&service, server_options);
  if (!server.Start(&error)) return Fail("start: " + error);

  std::printf("binary_port=%u\nhttp_port=%u\n", server.binary_port(),
              server.http_port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Periodic snapshot saves, so a crash loses at most one interval of
  // cache warmth. The thread wakes early on shutdown to exit promptly.
  std::mutex saver_mu;
  std::condition_variable saver_cv;
  bool stopping = false;
  std::thread saver;
  if (snapshot_path != nullptr && snapshot_interval_s > 0) {
    saver = std::thread([&] {
      std::unique_lock<std::mutex> lock(saver_mu);
      while (!saver_cv.wait_for(
          lock, std::chrono::duration<double>(snapshot_interval_s),
          [&] { return stopping; })) {
        lock.unlock();
        const vbin::Status status = planner.SaveSnapshot(snapshot_path);
        if (!status.ok()) {
          std::fprintf(stderr, "vbr_server: snapshot save failed: %s\n",
                       status.error.c_str());
        }
        lock.lock();
      }
    });
  }

  g_shutdown.acquire();

  std::fprintf(stderr, "vbr_server: shutting down\n");
  if (drain_grace_ms > 0) {
    // Graceful drain first: stop accepting, flush what's in flight, then
    // Stop() force-closes whatever the grace period didn't cover.
    if (server.Drain(drain_grace_ms)) {
      std::fprintf(stderr, "vbr_server: drained cleanly\n");
    } else {
      std::fprintf(stderr,
                   "vbr_server: drain grace expired with connections open\n");
    }
  }
  server.Stop();
  service.Shutdown();
  if (saver.joinable()) {
    {
      std::lock_guard<std::mutex> lock(saver_mu);
      stopping = true;
    }
    saver_cv.notify_all();
    saver.join();
  }
  // Final save AFTER the drain, so everything planned this run persists.
  if (snapshot_path != nullptr) {
    const vbin::Status status = planner.SaveSnapshot(snapshot_path);
    if (status.ok()) {
      std::fprintf(stderr, "vbr_server: snapshot saved to %s\n",
                   snapshot_path);
    } else {
      std::fprintf(stderr, "vbr_server: final snapshot save failed: %s\n",
                   status.error.c_str());
    }
  }
  if (request_log != nullptr) {
    request_log->Close();
    if (!request_log->error().empty()) {
      std::fprintf(stderr, "vbr_server: request log: %s\n",
                   request_log->error().c_str());
    }
  }
  std::fprintf(stderr, "vbr_server: %s\n",
               service.stats().ToString().c_str());
  return 0;
}
