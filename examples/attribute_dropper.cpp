// Reproduces Example 6.1 / Figure 5: under cost model M3 the classical
// supplementary-relation (SR) strategy must carry attribute B through the
// plan for rewriting P2 = v1(A,B), v2(A,B), while the paper's generalized
// (GSR) heuristic proves — by renaming B in the processed prefix and
// re-checking equivalence — that B can be dropped immediately, yielding a
// strictly cheaper physical plan that still computes the same answer.

#include <cstdio>

#include "cost/supplementary.h"
#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"

int main() {
  using namespace vbr;

  const ConjunctiveQuery query =
      MustParseQuery("q(A) :- r(A,A), t(A,B), s(B,B)");
  const ViewSet views = MustParseProgram(R"(
    v1(A,B) :- r(A,A), s(B,B)
    v2(A,B) :- t(A,B), s(B,B)
  )");
  const ConjunctiveQuery p2 = MustParseQuery("q(A) :- v1(A,B), v2(A,B)");

  // Figure 5's instance.
  Database base;
  base.AddRow("r", {1, 1});
  for (Value v : {2, 4, 6, 8}) base.AddRow("s", {v, v});
  base.AddRow("t", {1, 2});
  base.AddRow("t", {3, 4});
  base.AddRow("t", {5, 6});
  base.AddRow("t", {7, 8});
  const Database view_db = MaterializeViews(views, base);

  std::printf("Query     : %s\n", query.ToString().c_str());
  std::printf("Rewriting : %s\n", p2.ToString().c_str());
  std::printf("v1 = %s\n",
              view_db.Find(SymbolTable::Global().Intern("v1"))
                  ->ToString()
                  .c_str());
  std::printf("v2 = %s\n",
              view_db.Find(SymbolTable::Global().Intern("v2"))
                  ->ToString()
                  .c_str());

  const M3Comparison cmp = CompareM3Strategies(p2, query, views, view_db);

  std::printf("\nSupplementary-relation strategy:\n  plan %s\n  cost %zu\n",
              cmp.sr_plan.ToString().c_str(), cmp.sr_cost);
  std::printf("Generalized (GSR) strategy:\n  plan %s\n  cost %zu\n",
              cmp.gsr_plan.ToString().c_str(), cmp.gsr_cost);

  const PlanExecution sr = ExecutePlan(cmp.sr_plan, view_db);
  const PlanExecution gsr = ExecutePlan(cmp.gsr_plan, view_db);
  std::printf("\nStep sizes (SR)  : ");
  for (size_t s : sr.state_sizes) std::printf("%zu ", s);
  std::printf("\nStep sizes (GSR) : ");
  for (size_t s : gsr.state_sizes) std::printf("%zu ", s);

  const Relation expected = EvaluateQuery(query, base);
  std::printf("\n\nanswer: %s (both strategies agree: %s)\n",
              expected.ToString().c_str(),
              (sr.answer.EqualsAsSet(expected) &&
               gsr.answer.EqualsAsSet(expected))
                  ? "yes"
                  : "NO");
  std::printf("GSR beats SR: %s (%zu < %zu)\n",
              cmp.gsr_cost < cmp.sr_cost ? "yes" : "no", cmp.gsr_cost,
              cmp.sr_cost);
  return cmp.gsr_cost < cmp.sr_cost ? 0 : 1;
}
