// vbr_loadgen — open-loop load generator for vbr_server's binary protocol.
//
// Drives N concurrent connections at an aggregate --qps offered rate (0 =
// flood) against a running vbr_server, using the shared open-loop driver
// (net/load_driver.h): the send schedule is absolute, so a saturated
// server shows up as queueing latency and shed responses, not as a quietly
// reduced offered rate.  Request ids are globally unique and every
// response is matched back, so lost and duplicated responses are detected
// exactly — either makes the run fail.
//
// With --check-statz the run ends by fetching /statz from the server's
// HTTP port and verifying the service accounting invariants
//   submitted == admitted + rejected
//   admitted  == completed + shed + failed
// which is what the CI smoke job asserts end to end over the wire.
//
// With --handles the driver reuses server-issued query handles: after a
// query's first response, later requests for it send the 8-byte handle
// instead of the text, and every handle-path response is byte-compared
// against the stored text-path response (a divergence fails the run).
//
// With --chaos SEED the run switches to the closed-loop resilient driver
// and enables the seeded socket chaos layer (net/chaos_socket.h) for the
// client side: injected short reads/writes, spurious EAGAIN, delayed
// flushes, disconnects, and connect failures, all replayable from the
// seed.  Duplicates still fail the run; losses are tolerated (a request
// whose retry budget ran out) but reported.  --resilient alone uses the
// resilient driver without injecting faults.
//
// Usage:
//   vbr_loadgen --port P --queries FILE [--connections N] [--qps Q]
//               [--requests N] [--deadline-ms MS] [--model m1|m2|m3]
//               [--options JSON] [--certificate] [--handles] [--host H]
//               [--check-statz HTTP_PORT] [--chaos SEED] [--resilient]
//
// Exit status: 0 on a clean run, 1 on setup errors, 2 on lost/duplicated
// responses, 3 on an accounting violation, 4 on a handle-path divergence.

#include <poll.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "cq/parser.h"
#include "net/chaos_socket.h"
#include "net/http.h"
#include "net/load_driver.h"
#include "net/socket.h"
#include "planner/request_options.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "vbr_loadgen: %s\n", message.c_str());
  return 1;
}

// Fetches /statz over a short-lived HTTP/1.0-style connection and returns
// the response body, or nullopt.
std::optional<std::string> FetchStatz(const std::string& host, uint16_t port,
                                      std::string* error) {
  vbr::net::OwnedFd fd = vbr::net::ConnectTcp(host, port, error);
  if (!fd.valid()) return std::nullopt;
  const std::string request =
      "GET /statz HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n";
  if (!vbr::net::WriteAll(fd.get(), request.data(), request.size())) {
    if (error != nullptr) *error = "write /statz request failed";
    return std::nullopt;
  }
  std::string response;
  char chunk[4096];
  while (true) {
    const vbr::net::IoResult r =
        vbr::net::ReadSome(fd.get(), chunk, sizeof(chunk));
    if (r.status == vbr::net::IoStatus::kOk) {
      response.append(chunk, r.n);
      continue;
    }
    if (r.status == vbr::net::IoStatus::kWouldBlock) {
      pollfd pfd{fd.get(), POLLIN, 0};
      ::poll(&pfd, 1, 1000);
      continue;
    }
    break;  // EOF: server honoured Connection: close
  }
  const size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    if (error != nullptr) *error = "malformed /statz response";
    return std::nullopt;
  }
  return response.substr(body_at + 4);
}

uint64_t StatOr0(const vbr::JsonValue& object, const char* key) {
  const vbr::JsonValue* member = object.Get(key);
  return member != nullptr && member->is_number()
             ? static_cast<uint64_t>(member->number_value())
             : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vbr;

  net::LoadDriverOptions load;
  const char* queries_path = nullptr;
  int statz_port = -1;
  bool chaos = false;
  uint64_t chaos_seed = 0;
  for (int i = 1; i < argc; ++i) {
    auto NeedsValue = [&](const char* flag) -> const char* {
      if (++i >= argc) {
        std::fprintf(stderr, "vbr_loadgen: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      load.port = static_cast<uint16_t>(std::atoi(NeedsValue("--port")));
    } else if (std::strcmp(argv[i], "--host") == 0) {
      load.host = NeedsValue("--host");
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      load.connections =
          static_cast<size_t>(std::atoi(NeedsValue("--connections")));
    } else if (std::strcmp(argv[i], "--qps") == 0) {
      load.qps = std::atof(NeedsValue("--qps"));
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      load.total_requests =
          static_cast<size_t>(std::atoi(NeedsValue("--requests")));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
      load.request.deadline_ms = std::atof(NeedsValue("--deadline-ms"));
    } else if (std::strcmp(argv[i], "--model") == 0) {
      if (!CostModelFromName(NeedsValue("--model"), &load.request.model)) {
        return Fail("--model needs m1, m2, or m3");
      }
    } else if (std::strcmp(argv[i], "--options") == 0) {
      std::string error;
      const auto parsed =
          PlanRequestOptions::FromJsonText(NeedsValue("--options"), &error);
      if (!parsed.has_value()) return Fail("--options: " + error);
      load.request = *parsed;
    } else if (std::strcmp(argv[i], "--certificate") == 0) {
      load.want_certificate = true;
    } else if (std::strcmp(argv[i], "--handles") == 0) {
      load.use_handles = true;
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      queries_path = NeedsValue("--queries");
    } else if (std::strcmp(argv[i], "--check-statz") == 0) {
      statz_port = std::atoi(NeedsValue("--check-statz"));
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
      load.resilient = true;
      chaos_seed = std::strtoull(NeedsValue("--chaos"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--resilient") == 0) {
      load.resilient = true;
    } else {
      return Fail(std::string("unknown flag ") + argv[i]);
    }
  }
  if (load.port == 0) return Fail("--port is required");
  if (queries_path == nullptr) return Fail("--queries is required");

  std::ifstream in(queries_path);
  if (!in) return Fail(std::string("cannot open ") + queries_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  // Parse once locally to reject malformed files with a good error, but
  // put the raw text on the wire (the server parses authoritatively).
  const auto parsed = ParseProgram(buffer.str(), &error);
  if (!parsed.has_value()) return Fail("queries parse error: " + error);
  if (parsed->empty()) return Fail("queries file has no rules");
  for (const ConjunctiveQuery& q : *parsed) {
    load.queries.push_back(q.ToString());
  }

  if (chaos) net::ChaosSocket::Enable(net::ChaosOptions::Soak(chaos_seed));
  net::LoadReport report;
  const bool load_ok = net::RunLoad(load, &report, &error);
  if (chaos) {
    // Disable before the /statz fetch: that check must see a calm network.
    const net::ChaosSocket::Stats cs = net::ChaosSocket::stats();
    net::ChaosSocket::Disable();
    std::printf(
        "chaos: seed=%llu short_r=%llu short_w=%llu eagain_r=%llu "
        "eagain_w=%llu delays=%llu disc_r=%llu disc_w=%llu resets=%llu "
        "connect_fail=%llu\n",
        static_cast<unsigned long long>(chaos_seed),
        static_cast<unsigned long long>(cs.short_reads),
        static_cast<unsigned long long>(cs.short_writes),
        static_cast<unsigned long long>(cs.read_eagains),
        static_cast<unsigned long long>(cs.write_eagains),
        static_cast<unsigned long long>(cs.write_delays),
        static_cast<unsigned long long>(cs.read_disconnects),
        static_cast<unsigned long long>(cs.write_disconnects),
        static_cast<unsigned long long>(cs.accept_resets),
        static_cast<unsigned long long>(cs.connect_failures));
  }
  if (!load_ok) return Fail(error);
  std::printf("%s\n", report.ToString().c_str());

  int exit_code = 0;
  // Under chaos a request can exhaust its retry budget: losses are
  // reported but tolerated.  Duplicates never are.
  if ((report.lost != 0 && !chaos) || report.duplicated != 0 ||
      report.decode_errors != 0) {
    std::fprintf(stderr,
                 "vbr_loadgen: FAIL lost=%zu duplicated=%zu decode_errors=%zu"
                 " (every request must be answered exactly once)\n",
                 report.lost, report.duplicated, report.decode_errors);
    exit_code = 2;
  }
  if (report.handle_mismatches != 0) {
    std::fprintf(stderr,
                 "vbr_loadgen: FAIL handle_mismatches=%zu (handle-path "
                 "responses must be byte-identical to the text path)\n",
                 report.handle_mismatches);
    exit_code = 4;
  }

  if (statz_port >= 0) {
    const auto body =
        FetchStatz(load.host, static_cast<uint16_t>(statz_port), &error);
    if (!body.has_value()) return Fail("statz: " + error);
    const auto statz = ParseJson(*body, &error);
    if (!statz.has_value() || !statz->is_object()) {
      return Fail("statz: unparseable JSON: " + error);
    }
    const JsonValue* service = statz->Get("service");
    if (service == nullptr || !service->is_object()) {
      return Fail("statz: missing \"service\" object");
    }
    const uint64_t submitted = StatOr0(*service, "submitted");
    const uint64_t admitted = StatOr0(*service, "admitted");
    const uint64_t rejected = StatOr0(*service, "rejected");
    const uint64_t completed = StatOr0(*service, "completed");
    const uint64_t shed = StatOr0(*service, "shed");
    const uint64_t failed = StatOr0(*service, "failed");
    std::printf(
        "statz: submitted=%llu admitted=%llu rejected=%llu completed=%llu "
        "shed=%llu failed=%llu\n",
        static_cast<unsigned long long>(submitted),
        static_cast<unsigned long long>(admitted),
        static_cast<unsigned long long>(rejected),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(failed));
    if (submitted != admitted + rejected) {
      std::fprintf(stderr,
                   "vbr_loadgen: FAIL accounting: submitted != admitted + "
                   "rejected\n");
      exit_code = 3;
    }
    // The in-flight-free check only holds once the queue is drained; the
    // loadgen has received every response it will get, so any remaining
    // difference means requests are still in flight (shutdown-shed later)
    // — tolerate in-flight but never over-count.
    if (completed + shed + failed > admitted) {
      std::fprintf(stderr,
                   "vbr_loadgen: FAIL accounting: completed + shed + failed "
                   "> admitted\n");
      exit_code = 3;
    }
  }
  return exit_code;
}
