// Warehouse advisor: a data warehouse keeps materialized summary views over
// a sales star schema and must answer an analyst's query from the views
// alone. The example sweeps all three cost models on the candidate logical
// plans: M1 picks the fewest joins, M2 orders the joins by measured
// intermediate sizes and weighs a redundant filtering view, and M3 drops
// attributes (supplementary vs generalized strategy).
//
// Schema: sales(Prod, Cust, Store)   prodcat(Prod, Cat)
//         custregion(Cust, Region)   storecity(Store, City)

#include <cstdio>

#include "common/rng.h"
#include "cost/cost_model.h"
#include "cost/filter_advisor.h"
#include "cost/m2_optimizer.h"
#include "cost/supplementary.h"
#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"
#include "rewrite/core_cover.h"

int main() {
  using namespace vbr;

  // "Regions and cities where electronics (category 7) sell."
  const ConjunctiveQuery query = MustParseQuery(
      "hot(R,CI) :- sales(P,CU,ST), prodcat(P,7), custregion(CU,R), "
      "storecity(ST,CI)");

  const ViewSet views = MustParseProgram(R"(
    mv_sales_geo(P,R,CI) :- sales(P,CU,ST), custregion(CU,R), storecity(ST,CI)
    mv_elec(P) :- prodcat(P,7)
    mv_elec_geo(R,CI) :- sales(P,CU,ST), prodcat(P,7), custregion(CU,R), storecity(ST,CI)
    mv_sales_region(P,R) :- sales(P,CU,ST), custregion(CU,R)
    mv_elec_regions(R) :- sales(P,CU,ST), prodcat(P,7), custregion(CU,R)
  )");

  std::printf("Query: %s\n\n", query.ToString().c_str());

  // Logical plans.
  const auto cc = CoreCover(query, views);
  const auto star = CoreCoverStar(query, views);
  std::printf("M1-optimal rewritings (%zu subgoal(s)):\n",
              cc.stats.minimum_cover_size);
  for (const auto& p : cc.rewritings) {
    std::printf("  cost_M1=%zu  %s\n", CostM1(p), p.ToString().c_str());
  }
  std::printf("\nM2 search space (all minimal rewritings):\n");
  for (const auto& p : star.rewritings) {
    std::printf("  %s\n", p.ToString().c_str());
  }

  // Warehouse data: electronics are rare, sales are wide.
  Database base;
  Rng rng(7);
  for (Value i = 0; i < 3000; ++i) {
    base.AddRow("sales",
                {rng.UniformInt(0, 199), rng.UniformInt(0, 99),
                 rng.UniformInt(0, 49)});
  }
  for (Value p = 0; p < 200; ++p) {
    base.AddRow("prodcat", {p, p < 6 ? 7 : 1 + p % 5});
  }
  for (Value c = 0; c < 100; ++c) base.AddRow("custregion", {c, c % 8});
  for (Value s = 0; s < 50; ++s) base.AddRow("storecity", {s, s % 12});
  const Database view_db = MaterializeViews(views, base);

  std::printf("\nMaterialized view sizes:\n");
  for (Symbol p : view_db.Predicates()) {
    std::printf("  %-18s %6zu rows\n",
                SymbolTable::Global().NameOf(p).c_str(),
                view_db.Find(p)->size());
  }

  // M2: optimize every candidate; report the winner.
  std::printf("\nM2-optimized plans:\n");
  const ConjunctiveQuery* winner = nullptr;
  size_t winner_cost = SIZE_MAX;
  for (const auto& p : star.rewritings) {
    const auto m2 = OptimizeOrderM2(p, view_db);
    std::printf("  cost %7zu  %s\n", m2.cost, m2.plan.ToString().c_str());
    if (m2.cost < winner_cost) {
      winner_cost = m2.cost;
      winner = &p;
    }
  }

  // Filters: can mv_elec_regions prune a multi-join plan?
  std::vector<Atom> filters;
  for (size_t i : star.filter_candidates) {
    filters.push_back(star.view_tuples[i].tuple.atom);
  }
  std::printf("\nFilter advice (%zu candidate filter(s)):\n", filters.size());
  for (const auto& p : star.rewritings) {
    if (p.num_subgoals() < 2) continue;
    const auto advice = AdviseFilters(p, filters, view_db);
    std::printf("  %s\n    M2 cost %zu -> %zu%s\n", p.ToString().c_str(),
                advice.base_cost, advice.improved_cost,
                advice.filters_added.empty() ? " (no filter worth it)" : "");
  }

  // M3 on the widest rewriting: SR vs GSR.
  std::printf("\nM3 attribute dropping:\n");
  for (const auto& p : star.rewritings) {
    if (p.num_subgoals() < 2) continue;
    const auto cmp = CompareM3Strategies(p, query, views, view_db);
    std::printf("  %s\n    SR  cost %7zu  %s\n    GSR cost %7zu  %s\n",
                p.ToString().c_str(), cmp.sr_cost,
                cmp.sr_plan.ToString().c_str(), cmp.gsr_cost,
                cmp.gsr_plan.ToString().c_str());
  }

  // Correctness gate.
  const Relation expected = EvaluateQuery(query, base);
  const Relation got = EvaluateQuery(*winner, view_db);
  std::printf("\nhot (region, city) pairs: %zu; winner matches query: %s\n",
              expected.size(), got.EqualsAsSet(expected) ? "yes" : "NO");
  return got.EqualsAsSet(expected) ? 0 : 1;
}
