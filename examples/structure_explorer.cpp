// Explores Section 3's structure of rewritings (Figures 1 and 2): checks
// which of the paper's rewritings P1..P5 are locally minimal, reconstructs
// the proper-containment partial order among them, enumerates the LMRs over
// view tuples, and replays Example 3.1's chain of LMRs of growing length.

#include <cstdio>

#include "cq/parser.h"
#include "rewrite/lmr.h"
#include "rewrite/rewriting.h"

namespace {

void PrintHeader(const char* title) { std::printf("\n=== %s ===\n", title); }

}  // namespace

int main() {
  using namespace vbr;

  const ConjunctiveQuery query =
      MustParseQuery("q1(S,C) :- car(M,a), loc(a,C), part(S,M,C)");
  const ViewSet views = MustParseProgram(R"(
    v1(M,D,C) :- car(M,D), loc(D,C)
    v2(S,M,C) :- part(S,M,C)
    v3(S) :- car(M,a), loc(a,C), part(S,M,C)
    v4(M,D,C,S) :- car(M,D), loc(D,C), part(S,M,C)
    v5(M,D,C) :- car(M,D), loc(D,C)
  )");
  const std::vector<ConjunctiveQuery> named = {
      MustParseQuery("q1(S,C) :- v1(M,a,C1), v1(M1,a,C), v2(S,M,C)"),   // P1
      MustParseQuery("q1(S,C) :- v1(M,a,C), v2(S,M,C)"),                // P2
      MustParseQuery("q1(S,C) :- v3(S), v1(M,a,C), v2(S,M,C)"),         // P3
      MustParseQuery("q1(S,C) :- v4(M,a,C,S)"),                         // P4
      MustParseQuery("q1(S,C) :- v1(M,a,C1), v5(M1,a,C), v2(S,M,C)"),   // P5
  };

  PrintHeader("Local minimality of the paper's P1..P5");
  std::vector<ConjunctiveQuery> lmrs;
  std::vector<int> lmr_ids;
  for (size_t i = 0; i < named.size(); ++i) {
    const bool eq = IsEquivalentRewriting(named[i], query, views);
    const bool lmr = IsLocallyMinimalRewriting(named[i], query, views);
    std::printf("  P%zu: equivalent=%s locally-minimal=%s  %s\n", i + 1,
                eq ? "yes" : "no", lmr ? "yes" : "no",
                named[i].ToString().c_str());
    if (lmr) {
      lmrs.push_back(named[i]);
      lmr_ids.push_back(static_cast<int>(i + 1));
    }
  }

  PrintHeader("Proper containment among the LMRs (Figure 2a)");
  for (const auto& [i, j] : ProperContainmentEdges(lmrs)) {
    std::printf("  P%d is properly contained in P%d (so |P%d| <= |P%d|: %zu <= %zu)\n",
                lmr_ids[i], lmr_ids[j], lmr_ids[i], lmr_ids[j],
                lmrs[i].num_subgoals(), lmrs[j].num_subgoals());
  }
  std::printf("  containment-minimal: ");
  for (size_t i : ContainmentMinimalIndices(lmrs)) {
    std::printf("P%d ", lmr_ids[i]);
  }
  std::printf("\n");

  PrintHeader("LMRs over view tuples");
  for (const auto& p : EnumerateLmrsOverViewTuples(query, views, 3)) {
    std::printf("  %s\n", p.ToString().c_str());
  }

  PrintHeader("Example 3.1: a chain of LMRs (Figure 2b)");
  const ConjunctiveQuery q31 =
      MustParseQuery("q(X,Y,Z) :- e1(X,c), e2(Y,c), e3(Z,c)");
  const ViewSet v31 =
      MustParseProgram("v(X,Y,Z,W) :- e1(X,W), e2(Y,W), e3(Z,W)");
  const std::vector<ConjunctiveQuery> chain = {
      MustParseQuery("q(X,Y,Z) :- v(X,Y,Z,c)"),
      MustParseQuery("q(X,Y,Z) :- v(X,Y,Z1,c), v(X1,Y1,Z,c)"),
      MustParseQuery(
          "q(X,Y,Z) :- v(X,Y1,Z1,c), v(X2,Y,Z2,c), v(X3,Y3,Z,c)"),
  };
  for (size_t i = 0; i < chain.size(); ++i) {
    std::printf("  |P| = %zu, LMR = %s : %s\n", chain[i].num_subgoals(),
                IsLocallyMinimalRewriting(chain[i], q31, v31) ? "yes" : "no",
                chain[i].ToString().c_str());
  }
  for (const auto& [i, j] : ProperContainmentEdges(chain)) {
    if (j == i + 1) std::printf("  chain link: P(%zu) < P(%zu)\n", i + 1, j + 1);
  }
  return 0;
}
