# Empty dependencies file for vbr_baseline.
# This may be replaced when dependencies are built.
