file(REMOVE_RECURSE
  "CMakeFiles/vbr_baseline.dir/bucket.cc.o"
  "CMakeFiles/vbr_baseline.dir/bucket.cc.o.d"
  "CMakeFiles/vbr_baseline.dir/minicon.cc.o"
  "CMakeFiles/vbr_baseline.dir/minicon.cc.o.d"
  "CMakeFiles/vbr_baseline.dir/naive_enum.cc.o"
  "CMakeFiles/vbr_baseline.dir/naive_enum.cc.o.d"
  "libvbr_baseline.a"
  "libvbr_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
