file(REMOVE_RECURSE
  "libvbr_baseline.a"
)
