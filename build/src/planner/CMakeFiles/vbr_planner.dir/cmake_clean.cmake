file(REMOVE_RECURSE
  "CMakeFiles/vbr_planner.dir/planner.cc.o"
  "CMakeFiles/vbr_planner.dir/planner.cc.o.d"
  "libvbr_planner.a"
  "libvbr_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
