file(REMOVE_RECURSE
  "libvbr_planner.a"
)
