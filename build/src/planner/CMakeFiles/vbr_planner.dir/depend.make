# Empty dependencies file for vbr_planner.
# This may be replaced when dependencies are built.
