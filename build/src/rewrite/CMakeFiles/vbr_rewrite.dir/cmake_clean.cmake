file(REMOVE_RECURSE
  "CMakeFiles/vbr_rewrite.dir/canonical_db.cc.o"
  "CMakeFiles/vbr_rewrite.dir/canonical_db.cc.o.d"
  "CMakeFiles/vbr_rewrite.dir/certificate.cc.o"
  "CMakeFiles/vbr_rewrite.dir/certificate.cc.o.d"
  "CMakeFiles/vbr_rewrite.dir/core_cover.cc.o"
  "CMakeFiles/vbr_rewrite.dir/core_cover.cc.o.d"
  "CMakeFiles/vbr_rewrite.dir/equivalence_classes.cc.o"
  "CMakeFiles/vbr_rewrite.dir/equivalence_classes.cc.o.d"
  "CMakeFiles/vbr_rewrite.dir/expansion.cc.o"
  "CMakeFiles/vbr_rewrite.dir/expansion.cc.o.d"
  "CMakeFiles/vbr_rewrite.dir/lmr.cc.o"
  "CMakeFiles/vbr_rewrite.dir/lmr.cc.o.d"
  "CMakeFiles/vbr_rewrite.dir/rewriting.cc.o"
  "CMakeFiles/vbr_rewrite.dir/rewriting.cc.o.d"
  "CMakeFiles/vbr_rewrite.dir/set_cover.cc.o"
  "CMakeFiles/vbr_rewrite.dir/set_cover.cc.o.d"
  "CMakeFiles/vbr_rewrite.dir/tuple_core.cc.o"
  "CMakeFiles/vbr_rewrite.dir/tuple_core.cc.o.d"
  "CMakeFiles/vbr_rewrite.dir/union_rewriting.cc.o"
  "CMakeFiles/vbr_rewrite.dir/union_rewriting.cc.o.d"
  "CMakeFiles/vbr_rewrite.dir/view_tuple.cc.o"
  "CMakeFiles/vbr_rewrite.dir/view_tuple.cc.o.d"
  "libvbr_rewrite.a"
  "libvbr_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
