# Empty compiler generated dependencies file for vbr_rewrite.
# This may be replaced when dependencies are built.
