file(REMOVE_RECURSE
  "libvbr_rewrite.a"
)
