
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/canonical_db.cc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/canonical_db.cc.o" "gcc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/canonical_db.cc.o.d"
  "/root/repo/src/rewrite/certificate.cc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/certificate.cc.o" "gcc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/certificate.cc.o.d"
  "/root/repo/src/rewrite/core_cover.cc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/core_cover.cc.o" "gcc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/core_cover.cc.o.d"
  "/root/repo/src/rewrite/equivalence_classes.cc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/equivalence_classes.cc.o" "gcc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/equivalence_classes.cc.o.d"
  "/root/repo/src/rewrite/expansion.cc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/expansion.cc.o" "gcc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/expansion.cc.o.d"
  "/root/repo/src/rewrite/lmr.cc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/lmr.cc.o" "gcc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/lmr.cc.o.d"
  "/root/repo/src/rewrite/rewriting.cc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/rewriting.cc.o" "gcc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/rewriting.cc.o.d"
  "/root/repo/src/rewrite/set_cover.cc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/set_cover.cc.o" "gcc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/set_cover.cc.o.d"
  "/root/repo/src/rewrite/tuple_core.cc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/tuple_core.cc.o" "gcc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/tuple_core.cc.o.d"
  "/root/repo/src/rewrite/union_rewriting.cc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/union_rewriting.cc.o" "gcc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/union_rewriting.cc.o.d"
  "/root/repo/src/rewrite/view_tuple.cc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/view_tuple.cc.o" "gcc" "src/rewrite/CMakeFiles/vbr_rewrite.dir/view_tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cq/CMakeFiles/vbr_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/vbr_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
