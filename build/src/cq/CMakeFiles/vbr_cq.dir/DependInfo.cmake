
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cq/atom.cc" "src/cq/CMakeFiles/vbr_cq.dir/atom.cc.o" "gcc" "src/cq/CMakeFiles/vbr_cq.dir/atom.cc.o.d"
  "/root/repo/src/cq/containment.cc" "src/cq/CMakeFiles/vbr_cq.dir/containment.cc.o" "gcc" "src/cq/CMakeFiles/vbr_cq.dir/containment.cc.o.d"
  "/root/repo/src/cq/homomorphism.cc" "src/cq/CMakeFiles/vbr_cq.dir/homomorphism.cc.o" "gcc" "src/cq/CMakeFiles/vbr_cq.dir/homomorphism.cc.o.d"
  "/root/repo/src/cq/parser.cc" "src/cq/CMakeFiles/vbr_cq.dir/parser.cc.o" "gcc" "src/cq/CMakeFiles/vbr_cq.dir/parser.cc.o.d"
  "/root/repo/src/cq/query.cc" "src/cq/CMakeFiles/vbr_cq.dir/query.cc.o" "gcc" "src/cq/CMakeFiles/vbr_cq.dir/query.cc.o.d"
  "/root/repo/src/cq/rename.cc" "src/cq/CMakeFiles/vbr_cq.dir/rename.cc.o" "gcc" "src/cq/CMakeFiles/vbr_cq.dir/rename.cc.o.d"
  "/root/repo/src/cq/substitution.cc" "src/cq/CMakeFiles/vbr_cq.dir/substitution.cc.o" "gcc" "src/cq/CMakeFiles/vbr_cq.dir/substitution.cc.o.d"
  "/root/repo/src/cq/symbol.cc" "src/cq/CMakeFiles/vbr_cq.dir/symbol.cc.o" "gcc" "src/cq/CMakeFiles/vbr_cq.dir/symbol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
