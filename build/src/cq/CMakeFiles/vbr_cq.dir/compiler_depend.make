# Empty compiler generated dependencies file for vbr_cq.
# This may be replaced when dependencies are built.
