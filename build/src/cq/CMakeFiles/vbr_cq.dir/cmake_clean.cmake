file(REMOVE_RECURSE
  "CMakeFiles/vbr_cq.dir/atom.cc.o"
  "CMakeFiles/vbr_cq.dir/atom.cc.o.d"
  "CMakeFiles/vbr_cq.dir/containment.cc.o"
  "CMakeFiles/vbr_cq.dir/containment.cc.o.d"
  "CMakeFiles/vbr_cq.dir/homomorphism.cc.o"
  "CMakeFiles/vbr_cq.dir/homomorphism.cc.o.d"
  "CMakeFiles/vbr_cq.dir/parser.cc.o"
  "CMakeFiles/vbr_cq.dir/parser.cc.o.d"
  "CMakeFiles/vbr_cq.dir/query.cc.o"
  "CMakeFiles/vbr_cq.dir/query.cc.o.d"
  "CMakeFiles/vbr_cq.dir/rename.cc.o"
  "CMakeFiles/vbr_cq.dir/rename.cc.o.d"
  "CMakeFiles/vbr_cq.dir/substitution.cc.o"
  "CMakeFiles/vbr_cq.dir/substitution.cc.o.d"
  "CMakeFiles/vbr_cq.dir/symbol.cc.o"
  "CMakeFiles/vbr_cq.dir/symbol.cc.o.d"
  "libvbr_cq.a"
  "libvbr_cq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_cq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
