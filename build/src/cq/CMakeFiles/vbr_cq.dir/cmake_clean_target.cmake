file(REMOVE_RECURSE
  "libvbr_cq.a"
)
