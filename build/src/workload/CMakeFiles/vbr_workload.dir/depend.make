# Empty dependencies file for vbr_workload.
# This may be replaced when dependencies are built.
