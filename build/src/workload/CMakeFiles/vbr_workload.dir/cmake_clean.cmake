file(REMOVE_RECURSE
  "CMakeFiles/vbr_workload.dir/data_gen.cc.o"
  "CMakeFiles/vbr_workload.dir/data_gen.cc.o.d"
  "CMakeFiles/vbr_workload.dir/generator.cc.o"
  "CMakeFiles/vbr_workload.dir/generator.cc.o.d"
  "libvbr_workload.a"
  "libvbr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
