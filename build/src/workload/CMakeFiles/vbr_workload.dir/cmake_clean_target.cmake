file(REMOVE_RECURSE
  "libvbr_workload.a"
)
