file(REMOVE_RECURSE
  "libvbr_engine.a"
)
