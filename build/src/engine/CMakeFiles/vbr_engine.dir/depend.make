# Empty dependencies file for vbr_engine.
# This may be replaced when dependencies are built.
