
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/acyclic.cc" "src/engine/CMakeFiles/vbr_engine.dir/acyclic.cc.o" "gcc" "src/engine/CMakeFiles/vbr_engine.dir/acyclic.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/engine/CMakeFiles/vbr_engine.dir/database.cc.o" "gcc" "src/engine/CMakeFiles/vbr_engine.dir/database.cc.o.d"
  "/root/repo/src/engine/evaluator.cc" "src/engine/CMakeFiles/vbr_engine.dir/evaluator.cc.o" "gcc" "src/engine/CMakeFiles/vbr_engine.dir/evaluator.cc.o.d"
  "/root/repo/src/engine/io.cc" "src/engine/CMakeFiles/vbr_engine.dir/io.cc.o" "gcc" "src/engine/CMakeFiles/vbr_engine.dir/io.cc.o.d"
  "/root/repo/src/engine/materialize.cc" "src/engine/CMakeFiles/vbr_engine.dir/materialize.cc.o" "gcc" "src/engine/CMakeFiles/vbr_engine.dir/materialize.cc.o.d"
  "/root/repo/src/engine/relation.cc" "src/engine/CMakeFiles/vbr_engine.dir/relation.cc.o" "gcc" "src/engine/CMakeFiles/vbr_engine.dir/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cq/CMakeFiles/vbr_cq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
