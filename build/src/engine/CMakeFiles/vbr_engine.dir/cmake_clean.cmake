file(REMOVE_RECURSE
  "CMakeFiles/vbr_engine.dir/acyclic.cc.o"
  "CMakeFiles/vbr_engine.dir/acyclic.cc.o.d"
  "CMakeFiles/vbr_engine.dir/database.cc.o"
  "CMakeFiles/vbr_engine.dir/database.cc.o.d"
  "CMakeFiles/vbr_engine.dir/evaluator.cc.o"
  "CMakeFiles/vbr_engine.dir/evaluator.cc.o.d"
  "CMakeFiles/vbr_engine.dir/io.cc.o"
  "CMakeFiles/vbr_engine.dir/io.cc.o.d"
  "CMakeFiles/vbr_engine.dir/materialize.cc.o"
  "CMakeFiles/vbr_engine.dir/materialize.cc.o.d"
  "CMakeFiles/vbr_engine.dir/relation.cc.o"
  "CMakeFiles/vbr_engine.dir/relation.cc.o.d"
  "libvbr_engine.a"
  "libvbr_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
