# Empty compiler generated dependencies file for vbr_cost.
# This may be replaced when dependencies are built.
