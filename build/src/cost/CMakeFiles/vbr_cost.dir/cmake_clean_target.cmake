file(REMOVE_RECURSE
  "libvbr_cost.a"
)
