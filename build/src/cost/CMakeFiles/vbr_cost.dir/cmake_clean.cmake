file(REMOVE_RECURSE
  "CMakeFiles/vbr_cost.dir/estimator.cc.o"
  "CMakeFiles/vbr_cost.dir/estimator.cc.o.d"
  "CMakeFiles/vbr_cost.dir/filter_advisor.cc.o"
  "CMakeFiles/vbr_cost.dir/filter_advisor.cc.o.d"
  "CMakeFiles/vbr_cost.dir/m2_optimizer.cc.o"
  "CMakeFiles/vbr_cost.dir/m2_optimizer.cc.o.d"
  "CMakeFiles/vbr_cost.dir/m3_optimizer.cc.o"
  "CMakeFiles/vbr_cost.dir/m3_optimizer.cc.o.d"
  "CMakeFiles/vbr_cost.dir/physical_plan.cc.o"
  "CMakeFiles/vbr_cost.dir/physical_plan.cc.o.d"
  "CMakeFiles/vbr_cost.dir/supplementary.cc.o"
  "CMakeFiles/vbr_cost.dir/supplementary.cc.o.d"
  "libvbr_cost.a"
  "libvbr_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
