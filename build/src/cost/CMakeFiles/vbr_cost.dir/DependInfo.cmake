
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/estimator.cc" "src/cost/CMakeFiles/vbr_cost.dir/estimator.cc.o" "gcc" "src/cost/CMakeFiles/vbr_cost.dir/estimator.cc.o.d"
  "/root/repo/src/cost/filter_advisor.cc" "src/cost/CMakeFiles/vbr_cost.dir/filter_advisor.cc.o" "gcc" "src/cost/CMakeFiles/vbr_cost.dir/filter_advisor.cc.o.d"
  "/root/repo/src/cost/m2_optimizer.cc" "src/cost/CMakeFiles/vbr_cost.dir/m2_optimizer.cc.o" "gcc" "src/cost/CMakeFiles/vbr_cost.dir/m2_optimizer.cc.o.d"
  "/root/repo/src/cost/m3_optimizer.cc" "src/cost/CMakeFiles/vbr_cost.dir/m3_optimizer.cc.o" "gcc" "src/cost/CMakeFiles/vbr_cost.dir/m3_optimizer.cc.o.d"
  "/root/repo/src/cost/physical_plan.cc" "src/cost/CMakeFiles/vbr_cost.dir/physical_plan.cc.o" "gcc" "src/cost/CMakeFiles/vbr_cost.dir/physical_plan.cc.o.d"
  "/root/repo/src/cost/supplementary.cc" "src/cost/CMakeFiles/vbr_cost.dir/supplementary.cc.o" "gcc" "src/cost/CMakeFiles/vbr_cost.dir/supplementary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cq/CMakeFiles/vbr_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/vbr_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/vbr_rewrite.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
