# CMake generated Testfile for 
# Source directory: /root/repo/tests/cost
# Build directory: /root/repo/build/tests/cost
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cost/physical_plan_test[1]_include.cmake")
include("/root/repo/build/tests/cost/m2_optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/cost/gsr_test[1]_include.cmake")
include("/root/repo/build/tests/cost/filter_advisor_test[1]_include.cmake")
include("/root/repo/build/tests/cost/estimator_test[1]_include.cmake")
include("/root/repo/build/tests/cost/m3_optimizer_test[1]_include.cmake")
