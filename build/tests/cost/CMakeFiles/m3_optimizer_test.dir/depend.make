# Empty dependencies file for m3_optimizer_test.
# This may be replaced when dependencies are built.
