file(REMOVE_RECURSE
  "CMakeFiles/m3_optimizer_test.dir/m3_optimizer_test.cc.o"
  "CMakeFiles/m3_optimizer_test.dir/m3_optimizer_test.cc.o.d"
  "m3_optimizer_test"
  "m3_optimizer_test.pdb"
  "m3_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
