file(REMOVE_RECURSE
  "CMakeFiles/filter_advisor_test.dir/filter_advisor_test.cc.o"
  "CMakeFiles/filter_advisor_test.dir/filter_advisor_test.cc.o.d"
  "filter_advisor_test"
  "filter_advisor_test.pdb"
  "filter_advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
