# Empty compiler generated dependencies file for filter_advisor_test.
# This may be replaced when dependencies are built.
