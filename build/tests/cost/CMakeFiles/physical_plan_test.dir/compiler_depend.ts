# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for physical_plan_test.
