file(REMOVE_RECURSE
  "CMakeFiles/physical_plan_test.dir/physical_plan_test.cc.o"
  "CMakeFiles/physical_plan_test.dir/physical_plan_test.cc.o.d"
  "physical_plan_test"
  "physical_plan_test.pdb"
  "physical_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/physical_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
