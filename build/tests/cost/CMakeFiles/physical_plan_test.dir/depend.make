# Empty dependencies file for physical_plan_test.
# This may be replaced when dependencies are built.
