file(REMOVE_RECURSE
  "CMakeFiles/m2_optimizer_test.dir/m2_optimizer_test.cc.o"
  "CMakeFiles/m2_optimizer_test.dir/m2_optimizer_test.cc.o.d"
  "m2_optimizer_test"
  "m2_optimizer_test.pdb"
  "m2_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
