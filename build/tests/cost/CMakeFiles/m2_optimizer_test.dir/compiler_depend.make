# Empty compiler generated dependencies file for m2_optimizer_test.
# This may be replaced when dependencies are built.
