# Empty dependencies file for estimator_test.
# This may be replaced when dependencies are built.
