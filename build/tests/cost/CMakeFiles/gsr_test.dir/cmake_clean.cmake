file(REMOVE_RECURSE
  "CMakeFiles/gsr_test.dir/gsr_test.cc.o"
  "CMakeFiles/gsr_test.dir/gsr_test.cc.o.d"
  "gsr_test"
  "gsr_test.pdb"
  "gsr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
