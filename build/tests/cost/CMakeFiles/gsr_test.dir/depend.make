# Empty dependencies file for gsr_test.
# This may be replaced when dependencies are built.
