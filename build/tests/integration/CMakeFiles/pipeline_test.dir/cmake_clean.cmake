file(REMOVE_RECURSE
  "CMakeFiles/pipeline_test.dir/pipeline_test.cc.o"
  "CMakeFiles/pipeline_test.dir/pipeline_test.cc.o.d"
  "pipeline_test"
  "pipeline_test.pdb"
  "pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
