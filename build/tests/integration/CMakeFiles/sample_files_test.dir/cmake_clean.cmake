file(REMOVE_RECURSE
  "CMakeFiles/sample_files_test.dir/sample_files_test.cc.o"
  "CMakeFiles/sample_files_test.dir/sample_files_test.cc.o.d"
  "sample_files_test"
  "sample_files_test.pdb"
  "sample_files_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
