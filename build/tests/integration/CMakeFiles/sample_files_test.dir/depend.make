# Empty dependencies file for sample_files_test.
# This may be replaced when dependencies are built.
