file(REMOVE_RECURSE
  "CMakeFiles/data_gen_test.dir/data_gen_test.cc.o"
  "CMakeFiles/data_gen_test.dir/data_gen_test.cc.o.d"
  "data_gen_test"
  "data_gen_test.pdb"
  "data_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
