# CMake generated Testfile for 
# Source directory: /root/repo/tests/workload
# Build directory: /root/repo/build/tests/workload
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/workload/generator_test[1]_include.cmake")
include("/root/repo/build/tests/workload/data_gen_test[1]_include.cmake")
