# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("cq")
subdirs("engine")
subdirs("rewrite")
subdirs("cost")
subdirs("baseline")
subdirs("workload")
subdirs("property")
subdirs("integration")
subdirs("planner")
