# CMake generated Testfile for 
# Source directory: /root/repo/tests/baseline
# Build directory: /root/repo/build/tests/baseline
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/baseline/naive_enum_test[1]_include.cmake")
include("/root/repo/build/tests/baseline/bucket_test[1]_include.cmake")
include("/root/repo/build/tests/baseline/minicon_test[1]_include.cmake")
