file(REMOVE_RECURSE
  "CMakeFiles/minicon_test.dir/minicon_test.cc.o"
  "CMakeFiles/minicon_test.dir/minicon_test.cc.o.d"
  "minicon_test"
  "minicon_test.pdb"
  "minicon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
