# Empty dependencies file for minicon_test.
# This may be replaced when dependencies are built.
