# Empty dependencies file for naive_enum_test.
# This may be replaced when dependencies are built.
