file(REMOVE_RECURSE
  "CMakeFiles/naive_enum_test.dir/naive_enum_test.cc.o"
  "CMakeFiles/naive_enum_test.dir/naive_enum_test.cc.o.d"
  "naive_enum_test"
  "naive_enum_test.pdb"
  "naive_enum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_enum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
