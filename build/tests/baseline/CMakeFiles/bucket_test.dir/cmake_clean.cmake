file(REMOVE_RECURSE
  "CMakeFiles/bucket_test.dir/bucket_test.cc.o"
  "CMakeFiles/bucket_test.dir/bucket_test.cc.o.d"
  "bucket_test"
  "bucket_test.pdb"
  "bucket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
