# Empty compiler generated dependencies file for bucket_test.
# This may be replaced when dependencies are built.
