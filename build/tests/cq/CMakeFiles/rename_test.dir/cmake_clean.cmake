file(REMOVE_RECURSE
  "CMakeFiles/rename_test.dir/rename_test.cc.o"
  "CMakeFiles/rename_test.dir/rename_test.cc.o.d"
  "rename_test"
  "rename_test.pdb"
  "rename_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rename_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
