# Empty compiler generated dependencies file for rename_test.
# This may be replaced when dependencies are built.
