# Empty compiler generated dependencies file for containment_test.
# This may be replaced when dependencies are built.
