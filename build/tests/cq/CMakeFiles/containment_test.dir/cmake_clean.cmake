file(REMOVE_RECURSE
  "CMakeFiles/containment_test.dir/containment_test.cc.o"
  "CMakeFiles/containment_test.dir/containment_test.cc.o.d"
  "containment_test"
  "containment_test.pdb"
  "containment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
