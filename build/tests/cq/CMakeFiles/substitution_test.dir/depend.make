# Empty dependencies file for substitution_test.
# This may be replaced when dependencies are built.
