file(REMOVE_RECURSE
  "CMakeFiles/substitution_test.dir/substitution_test.cc.o"
  "CMakeFiles/substitution_test.dir/substitution_test.cc.o.d"
  "substitution_test"
  "substitution_test.pdb"
  "substitution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substitution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
