# Empty compiler generated dependencies file for symbol_test.
# This may be replaced when dependencies are built.
