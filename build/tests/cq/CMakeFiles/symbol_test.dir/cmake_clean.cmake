file(REMOVE_RECURSE
  "CMakeFiles/symbol_test.dir/symbol_test.cc.o"
  "CMakeFiles/symbol_test.dir/symbol_test.cc.o.d"
  "symbol_test"
  "symbol_test.pdb"
  "symbol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
