file(REMOVE_RECURSE
  "CMakeFiles/term_atom_test.dir/term_atom_test.cc.o"
  "CMakeFiles/term_atom_test.dir/term_atom_test.cc.o.d"
  "term_atom_test"
  "term_atom_test.pdb"
  "term_atom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/term_atom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
