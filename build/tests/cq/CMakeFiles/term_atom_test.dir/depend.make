# Empty dependencies file for term_atom_test.
# This may be replaced when dependencies are built.
