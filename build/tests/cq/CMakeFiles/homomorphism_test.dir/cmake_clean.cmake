file(REMOVE_RECURSE
  "CMakeFiles/homomorphism_test.dir/homomorphism_test.cc.o"
  "CMakeFiles/homomorphism_test.dir/homomorphism_test.cc.o.d"
  "homomorphism_test"
  "homomorphism_test.pdb"
  "homomorphism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homomorphism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
