# Empty dependencies file for homomorphism_test.
# This may be replaced when dependencies are built.
