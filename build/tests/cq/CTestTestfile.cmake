# CMake generated Testfile for 
# Source directory: /root/repo/tests/cq
# Build directory: /root/repo/build/tests/cq
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cq/symbol_test[1]_include.cmake")
include("/root/repo/build/tests/cq/term_atom_test[1]_include.cmake")
include("/root/repo/build/tests/cq/query_test[1]_include.cmake")
include("/root/repo/build/tests/cq/parser_test[1]_include.cmake")
include("/root/repo/build/tests/cq/substitution_test[1]_include.cmake")
include("/root/repo/build/tests/cq/homomorphism_test[1]_include.cmake")
include("/root/repo/build/tests/cq/containment_test[1]_include.cmake")
include("/root/repo/build/tests/cq/rename_test[1]_include.cmake")
include("/root/repo/build/tests/cq/parser_fuzz_test[1]_include.cmake")
