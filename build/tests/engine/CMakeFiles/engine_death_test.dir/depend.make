# Empty dependencies file for engine_death_test.
# This may be replaced when dependencies are built.
