file(REMOVE_RECURSE
  "CMakeFiles/engine_death_test.dir/engine_death_test.cc.o"
  "CMakeFiles/engine_death_test.dir/engine_death_test.cc.o.d"
  "engine_death_test"
  "engine_death_test.pdb"
  "engine_death_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_death_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
