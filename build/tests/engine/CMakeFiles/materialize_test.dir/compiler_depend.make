# Empty compiler generated dependencies file for materialize_test.
# This may be replaced when dependencies are built.
