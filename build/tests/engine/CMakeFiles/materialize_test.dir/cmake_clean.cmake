file(REMOVE_RECURSE
  "CMakeFiles/materialize_test.dir/materialize_test.cc.o"
  "CMakeFiles/materialize_test.dir/materialize_test.cc.o.d"
  "materialize_test"
  "materialize_test.pdb"
  "materialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/materialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
