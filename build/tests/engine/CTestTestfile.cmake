# CMake generated Testfile for 
# Source directory: /root/repo/tests/engine
# Build directory: /root/repo/build/tests/engine
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/engine/relation_test[1]_include.cmake")
include("/root/repo/build/tests/engine/database_test[1]_include.cmake")
include("/root/repo/build/tests/engine/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/engine/materialize_test[1]_include.cmake")
include("/root/repo/build/tests/engine/engine_death_test[1]_include.cmake")
include("/root/repo/build/tests/engine/io_test[1]_include.cmake")
include("/root/repo/build/tests/engine/acyclic_test[1]_include.cmake")
