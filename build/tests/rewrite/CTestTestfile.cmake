# CMake generated Testfile for 
# Source directory: /root/repo/tests/rewrite
# Build directory: /root/repo/build/tests/rewrite
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rewrite/expansion_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite/rewriting_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite/view_tuple_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite/tuple_core_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite/set_cover_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite/core_cover_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite/lmr_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite/equivalence_classes_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite/union_rewriting_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite/certificate_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite/core_cover_edge_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite/union_edge_test[1]_include.cmake")
