# Empty compiler generated dependencies file for rewriting_test.
# This may be replaced when dependencies are built.
