# Empty dependencies file for equivalence_classes_test.
# This may be replaced when dependencies are built.
