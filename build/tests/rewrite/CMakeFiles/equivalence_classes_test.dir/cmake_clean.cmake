file(REMOVE_RECURSE
  "CMakeFiles/equivalence_classes_test.dir/equivalence_classes_test.cc.o"
  "CMakeFiles/equivalence_classes_test.dir/equivalence_classes_test.cc.o.d"
  "equivalence_classes_test"
  "equivalence_classes_test.pdb"
  "equivalence_classes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_classes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
