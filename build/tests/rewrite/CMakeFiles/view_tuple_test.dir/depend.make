# Empty dependencies file for view_tuple_test.
# This may be replaced when dependencies are built.
