file(REMOVE_RECURSE
  "CMakeFiles/view_tuple_test.dir/view_tuple_test.cc.o"
  "CMakeFiles/view_tuple_test.dir/view_tuple_test.cc.o.d"
  "view_tuple_test"
  "view_tuple_test.pdb"
  "view_tuple_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_tuple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
