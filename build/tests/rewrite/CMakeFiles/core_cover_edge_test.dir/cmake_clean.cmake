file(REMOVE_RECURSE
  "CMakeFiles/core_cover_edge_test.dir/core_cover_edge_test.cc.o"
  "CMakeFiles/core_cover_edge_test.dir/core_cover_edge_test.cc.o.d"
  "core_cover_edge_test"
  "core_cover_edge_test.pdb"
  "core_cover_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cover_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
