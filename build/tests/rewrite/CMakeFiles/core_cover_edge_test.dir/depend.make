# Empty dependencies file for core_cover_edge_test.
# This may be replaced when dependencies are built.
