
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rewrite/core_cover_edge_test.cc" "tests/rewrite/CMakeFiles/core_cover_edge_test.dir/core_cover_edge_test.cc.o" "gcc" "tests/rewrite/CMakeFiles/core_cover_edge_test.dir/core_cover_edge_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rewrite/CMakeFiles/vbr_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/vbr_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/cq/CMakeFiles/vbr_cq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
