file(REMOVE_RECURSE
  "CMakeFiles/lmr_test.dir/lmr_test.cc.o"
  "CMakeFiles/lmr_test.dir/lmr_test.cc.o.d"
  "lmr_test"
  "lmr_test.pdb"
  "lmr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
