# Empty dependencies file for lmr_test.
# This may be replaced when dependencies are built.
