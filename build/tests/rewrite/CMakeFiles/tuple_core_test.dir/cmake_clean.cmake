file(REMOVE_RECURSE
  "CMakeFiles/tuple_core_test.dir/tuple_core_test.cc.o"
  "CMakeFiles/tuple_core_test.dir/tuple_core_test.cc.o.d"
  "tuple_core_test"
  "tuple_core_test.pdb"
  "tuple_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
