# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tuple_core_test.
