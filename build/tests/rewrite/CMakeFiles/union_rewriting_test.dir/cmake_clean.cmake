file(REMOVE_RECURSE
  "CMakeFiles/union_rewriting_test.dir/union_rewriting_test.cc.o"
  "CMakeFiles/union_rewriting_test.dir/union_rewriting_test.cc.o.d"
  "union_rewriting_test"
  "union_rewriting_test.pdb"
  "union_rewriting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_rewriting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
