# Empty compiler generated dependencies file for union_rewriting_test.
# This may be replaced when dependencies are built.
