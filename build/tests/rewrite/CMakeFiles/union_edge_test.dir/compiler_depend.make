# Empty compiler generated dependencies file for union_edge_test.
# This may be replaced when dependencies are built.
