file(REMOVE_RECURSE
  "CMakeFiles/union_edge_test.dir/union_edge_test.cc.o"
  "CMakeFiles/union_edge_test.dir/union_edge_test.cc.o.d"
  "union_edge_test"
  "union_edge_test.pdb"
  "union_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
