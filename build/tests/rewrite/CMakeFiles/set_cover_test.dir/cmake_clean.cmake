file(REMOVE_RECURSE
  "CMakeFiles/set_cover_test.dir/set_cover_test.cc.o"
  "CMakeFiles/set_cover_test.dir/set_cover_test.cc.o.d"
  "set_cover_test"
  "set_cover_test.pdb"
  "set_cover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_cover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
