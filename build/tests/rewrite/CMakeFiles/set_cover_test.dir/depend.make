# Empty dependencies file for set_cover_test.
# This may be replaced when dependencies are built.
