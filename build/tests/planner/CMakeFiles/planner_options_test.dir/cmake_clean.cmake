file(REMOVE_RECURSE
  "CMakeFiles/planner_options_test.dir/planner_options_test.cc.o"
  "CMakeFiles/planner_options_test.dir/planner_options_test.cc.o.d"
  "planner_options_test"
  "planner_options_test.pdb"
  "planner_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
