# CMake generated Testfile for 
# Source directory: /root/repo/tests/planner
# Build directory: /root/repo/build/tests/planner
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/planner/planner_test[1]_include.cmake")
include("/root/repo/build/tests/planner/planner_options_test[1]_include.cmake")
