file(REMOVE_RECURSE
  "CMakeFiles/cross_validation_test.dir/cross_validation_test.cc.o"
  "CMakeFiles/cross_validation_test.dir/cross_validation_test.cc.o.d"
  "cross_validation_test"
  "cross_validation_test.pdb"
  "cross_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
