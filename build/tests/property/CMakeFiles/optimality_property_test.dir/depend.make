# Empty dependencies file for optimality_property_test.
# This may be replaced when dependencies are built.
