file(REMOVE_RECURSE
  "CMakeFiles/optimality_property_test.dir/optimality_property_test.cc.o"
  "CMakeFiles/optimality_property_test.dir/optimality_property_test.cc.o.d"
  "optimality_property_test"
  "optimality_property_test.pdb"
  "optimality_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimality_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
