file(REMOVE_RECURSE
  "CMakeFiles/corecover_soundness_test.dir/corecover_soundness_test.cc.o"
  "CMakeFiles/corecover_soundness_test.dir/corecover_soundness_test.cc.o.d"
  "corecover_soundness_test"
  "corecover_soundness_test.pdb"
  "corecover_soundness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corecover_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
