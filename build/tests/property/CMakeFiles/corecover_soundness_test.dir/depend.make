# Empty dependencies file for corecover_soundness_test.
# This may be replaced when dependencies are built.
