file(REMOVE_RECURSE
  "CMakeFiles/theorem41_property_test.dir/theorem41_property_test.cc.o"
  "CMakeFiles/theorem41_property_test.dir/theorem41_property_test.cc.o.d"
  "theorem41_property_test"
  "theorem41_property_test.pdb"
  "theorem41_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem41_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
