# Empty compiler generated dependencies file for theorem41_property_test.
# This may be replaced when dependencies are built.
