file(REMOVE_RECURSE
  "CMakeFiles/m3_safety_property_test.dir/m3_safety_property_test.cc.o"
  "CMakeFiles/m3_safety_property_test.dir/m3_safety_property_test.cc.o.d"
  "m3_safety_property_test"
  "m3_safety_property_test.pdb"
  "m3_safety_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3_safety_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
