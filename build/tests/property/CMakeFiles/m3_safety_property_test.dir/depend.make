# Empty dependencies file for m3_safety_property_test.
# This may be replaced when dependencies are built.
