# Empty dependencies file for baseline_agreement_test.
# This may be replaced when dependencies are built.
