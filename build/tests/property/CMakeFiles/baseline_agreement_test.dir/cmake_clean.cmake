file(REMOVE_RECURSE
  "CMakeFiles/baseline_agreement_test.dir/baseline_agreement_test.cc.o"
  "CMakeFiles/baseline_agreement_test.dir/baseline_agreement_test.cc.o.d"
  "baseline_agreement_test"
  "baseline_agreement_test.pdb"
  "baseline_agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
