# CMake generated Testfile for 
# Source directory: /root/repo/tests/property
# Build directory: /root/repo/build/tests/property
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/property/corecover_soundness_test[1]_include.cmake")
include("/root/repo/build/tests/property/optimality_property_test[1]_include.cmake")
include("/root/repo/build/tests/property/m3_safety_property_test[1]_include.cmake")
include("/root/repo/build/tests/property/baseline_agreement_test[1]_include.cmake")
include("/root/repo/build/tests/property/theorem41_property_test[1]_include.cmake")
include("/root/repo/build/tests/property/cross_validation_test[1]_include.cmake")
include("/root/repo/build/tests/property/determinism_test[1]_include.cmake")
