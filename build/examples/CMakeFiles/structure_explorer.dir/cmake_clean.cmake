file(REMOVE_RECURSE
  "CMakeFiles/structure_explorer.dir/structure_explorer.cpp.o"
  "CMakeFiles/structure_explorer.dir/structure_explorer.cpp.o.d"
  "structure_explorer"
  "structure_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structure_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
