# Empty dependencies file for structure_explorer.
# This may be replaced when dependencies are built.
