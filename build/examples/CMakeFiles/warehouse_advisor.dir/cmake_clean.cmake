file(REMOVE_RECURSE
  "CMakeFiles/warehouse_advisor.dir/warehouse_advisor.cpp.o"
  "CMakeFiles/warehouse_advisor.dir/warehouse_advisor.cpp.o.d"
  "warehouse_advisor"
  "warehouse_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
