# Empty compiler generated dependencies file for warehouse_advisor.
# This may be replaced when dependencies are built.
