# Empty dependencies file for vbr_cli.
# This may be replaced when dependencies are built.
