file(REMOVE_RECURSE
  "CMakeFiles/vbr_cli.dir/vbr_cli.cpp.o"
  "CMakeFiles/vbr_cli.dir/vbr_cli.cpp.o.d"
  "vbr_cli"
  "vbr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vbr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
