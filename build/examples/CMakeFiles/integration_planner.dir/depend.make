# Empty dependencies file for integration_planner.
# This may be replaced when dependencies are built.
