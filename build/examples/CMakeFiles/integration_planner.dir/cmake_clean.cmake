file(REMOVE_RECURSE
  "CMakeFiles/integration_planner.dir/integration_planner.cpp.o"
  "CMakeFiles/integration_planner.dir/integration_planner.cpp.o.d"
  "integration_planner"
  "integration_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
