# Empty dependencies file for attribute_dropper.
# This may be replaced when dependencies are built.
