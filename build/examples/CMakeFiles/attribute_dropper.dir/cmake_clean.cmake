file(REMOVE_RECURSE
  "CMakeFiles/attribute_dropper.dir/attribute_dropper.cpp.o"
  "CMakeFiles/attribute_dropper.dir/attribute_dropper.cpp.o.d"
  "attribute_dropper"
  "attribute_dropper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_dropper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
