# Empty dependencies file for bench_m2_optimizer.
# This may be replaced when dependencies are built.
