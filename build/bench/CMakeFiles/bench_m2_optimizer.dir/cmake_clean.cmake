file(REMOVE_RECURSE
  "CMakeFiles/bench_m2_optimizer.dir/bench_m2_optimizer.cc.o"
  "CMakeFiles/bench_m2_optimizer.dir/bench_m2_optimizer.cc.o.d"
  "bench_m2_optimizer"
  "bench_m2_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m2_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
