# Empty dependencies file for bench_yannakakis.
# This may be replaced when dependencies are built.
