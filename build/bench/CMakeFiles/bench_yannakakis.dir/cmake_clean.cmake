file(REMOVE_RECURSE
  "CMakeFiles/bench_yannakakis.dir/bench_yannakakis.cc.o"
  "CMakeFiles/bench_yannakakis.dir/bench_yannakakis.cc.o.d"
  "bench_yannakakis"
  "bench_yannakakis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yannakakis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
