file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_star_classes.dir/bench_fig7_star_classes.cc.o"
  "CMakeFiles/bench_fig7_star_classes.dir/bench_fig7_star_classes.cc.o.d"
  "bench_fig7_star_classes"
  "bench_fig7_star_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_star_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
