# Empty dependencies file for bench_fig7_star_classes.
# This may be replaced when dependencies are built.
