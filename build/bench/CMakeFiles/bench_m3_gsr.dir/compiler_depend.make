# Empty compiler generated dependencies file for bench_m3_gsr.
# This may be replaced when dependencies are built.
