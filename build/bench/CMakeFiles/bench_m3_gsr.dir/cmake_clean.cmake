file(REMOVE_RECURSE
  "CMakeFiles/bench_m3_gsr.dir/bench_m3_gsr.cc.o"
  "CMakeFiles/bench_m3_gsr.dir/bench_m3_gsr.cc.o.d"
  "bench_m3_gsr"
  "bench_m3_gsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m3_gsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
