
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_corecover_vs_minicon.cc" "bench/CMakeFiles/bench_corecover_vs_minicon.dir/bench_corecover_vs_minicon.cc.o" "gcc" "bench/CMakeFiles/bench_corecover_vs_minicon.dir/bench_corecover_vs_minicon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/vbr_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/vbr_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/vbr_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/vbr_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vbr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cq/CMakeFiles/vbr_cq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
