# Empty dependencies file for bench_corecover_vs_minicon.
# This may be replaced when dependencies are built.
