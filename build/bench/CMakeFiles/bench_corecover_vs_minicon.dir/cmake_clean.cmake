file(REMOVE_RECURSE
  "CMakeFiles/bench_corecover_vs_minicon.dir/bench_corecover_vs_minicon.cc.o"
  "CMakeFiles/bench_corecover_vs_minicon.dir/bench_corecover_vs_minicon.cc.o.d"
  "bench_corecover_vs_minicon"
  "bench_corecover_vs_minicon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corecover_vs_minicon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
