file(REMOVE_RECURSE
  "CMakeFiles/bench_estimator.dir/bench_estimator.cc.o"
  "CMakeFiles/bench_estimator.dir/bench_estimator.cc.o.d"
  "bench_estimator"
  "bench_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
