# Empty compiler generated dependencies file for bench_estimator.
# This may be replaced when dependencies are built.
