file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eqclasses.dir/bench_ablation_eqclasses.cc.o"
  "CMakeFiles/bench_ablation_eqclasses.dir/bench_ablation_eqclasses.cc.o.d"
  "bench_ablation_eqclasses"
  "bench_ablation_eqclasses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eqclasses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
