# Empty dependencies file for bench_ablation_eqclasses.
# This may be replaced when dependencies are built.
