# Empty dependencies file for bench_fig6_star_time.
# This may be replaced when dependencies are built.
