file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_chain_classes.dir/bench_fig9_chain_classes.cc.o"
  "CMakeFiles/bench_fig9_chain_classes.dir/bench_fig9_chain_classes.cc.o.d"
  "bench_fig9_chain_classes"
  "bench_fig9_chain_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_chain_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
