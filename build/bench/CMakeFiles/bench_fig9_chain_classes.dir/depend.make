# Empty dependencies file for bench_fig9_chain_classes.
# This may be replaced when dependencies are built.
