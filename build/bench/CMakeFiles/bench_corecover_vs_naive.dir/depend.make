# Empty dependencies file for bench_corecover_vs_naive.
# This may be replaced when dependencies are built.
