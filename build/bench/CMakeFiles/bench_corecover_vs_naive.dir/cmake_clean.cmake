file(REMOVE_RECURSE
  "CMakeFiles/bench_corecover_vs_naive.dir/bench_corecover_vs_naive.cc.o"
  "CMakeFiles/bench_corecover_vs_naive.dir/bench_corecover_vs_naive.cc.o.d"
  "bench_corecover_vs_naive"
  "bench_corecover_vs_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corecover_vs_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
