file(REMOVE_RECURSE
  "CMakeFiles/bench_random_queries.dir/bench_random_queries.cc.o"
  "CMakeFiles/bench_random_queries.dir/bench_random_queries.cc.o.d"
  "bench_random_queries"
  "bench_random_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_random_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
