# Empty dependencies file for bench_random_queries.
# This may be replaced when dependencies are built.
