# Empty dependencies file for bench_fig8_chain_time.
# This may be replaced when dependencies are built.
