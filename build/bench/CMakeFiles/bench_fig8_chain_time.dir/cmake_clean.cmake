file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_chain_time.dir/bench_fig8_chain_time.cc.o"
  "CMakeFiles/bench_fig8_chain_time.dir/bench_fig8_chain_time.cc.o.d"
  "bench_fig8_chain_time"
  "bench_fig8_chain_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_chain_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
