file(REMOVE_RECURSE
  "CMakeFiles/bench_containment.dir/bench_containment.cc.o"
  "CMakeFiles/bench_containment.dir/bench_containment.cc.o.d"
  "bench_containment"
  "bench_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
