# Empty compiler generated dependencies file for bench_containment.
# This may be replaced when dependencies are built.
